#![warn(missing_docs)]

//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary in this crate regenerates one table or figure of the
//! paper (see `DESIGN.md`'s per-experiment index). They share a tiny
//! command-line convention:
//!
//! * `--scale tiny|ci|paper|1/N` — the global scale knob
//!   (default `ci`; `tiny` for smoke runs, `paper` for the full-size
//!   reproduction),
//! * `--seed N` — dataset seed (default 2007),
//! * `--workloads A,B,C` — restrict to a subset (default: all eight),
//! * `--json` — also write the results as `results/<name>.json`, a
//!   machine-readable twin of the text output,
//! * `--metrics-out FILE` — like `--json` but to an explicit path,
//! * `--jobs N` — worker threads for the experiment grid (default 1,
//!   `0` = one per CPU); output is byte-identical at any job count,
//! * `--cache-dir DIR` — content-addressed result cache root (default
//!   `results/cache`),
//! * `--no-cache` — disable the result cache for this run,
//! * `--journal-dir DIR` — enable the crash-safe write-ahead run
//!   journal, storing `<run-id>.jsonl` under `DIR`,
//! * `--run-id ID` — name this run's journal (implies `--journal-dir
//!   results/journal` unless one is given),
//! * `--resume ID` — resume the journalled run `ID`: completed cells
//!   are replayed from the journal, in-flight ones re-execute,
//! * `--isolate inline|process` — where grid cells execute; `process`
//!   re-execs the binary per cell (hidden `__run-job` entrypoint) so
//!   aborts and OOM kills are contained and retried,
//! * `--retries N` — extra attempts for a crashed/hung cell (default 1),
//! * `--trace-dir DIR` — persist captured FSB streams content-addressed
//!   under `DIR`, so later runs (and other binaries sharing a platform
//!   configuration) replay from disk instead of re-executing,
//! * `--no-replay` — escape hatch: execute the co-simulation once per
//!   grid cell, exactly as before capture-once/replay-many existed.
//!   Output is byte-identical either way; this exists to measure the
//!   speedup and to bisect any suspected replay divergence,
//! * `--connect ADDR` — submit the grid to a running `cmpsim serve`
//!   coordinator instead of executing locally: cells execute on the
//!   daemon's worker fleet against its shared result cache, results
//!   stream back, and the rendered output is byte-identical to a local
//!   run. `--run-id`/`--resume` name the *server-side* journal; the
//!   daemon owns journalling, caching, and the trace sidecar in this
//!   mode.
//!
//! The JSON twin carries a run manifest (producer, version, scale, seed,
//! workloads, wall time) plus a `results` payload built by the
//! [`results_json`] converters, so a plot script never has to parse the
//! aligned text tables.
//!
//! Every binary funnels its per-workload cells through
//! [`cmpsim_core::grid::run_grid`] and renders text by parsing the JSON
//! payloads back (see [`results_json`]'s `parse_*` functions) — the one
//! code path guarantees serial, parallel, cold, and warm runs print the
//! same bytes.

use cmpsim_core::grid::{self, GridSpec};
use cmpsim_core::runner::{
    shutdown, IsolateMode, JobError, JournalConfig, RunReport, RunnerConfig, CHILD_ENTRY,
};
use cmpsim_core::{CaptureBroker, CaptureCounters};
use cmpsim_service::{CellSpec, Submission};
use cmpsim_telemetry::trace::{self as ftrace, FlightRecorder};
use cmpsim_telemetry::{JsonValue, RunManifest};
use cmpsim_workloads::{Scale, WorkloadId};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

pub mod results_json;

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Global scale knob.
    pub scale: Scale,
    /// Dataset seed.
    pub seed: u64,
    /// Workloads to run.
    pub workloads: Vec<WorkloadId>,
    /// Write a `results/<name>.json` twin next to the text output.
    pub json: bool,
    /// Explicit output path for the JSON twin (implies `--json`).
    pub metrics_out: Option<PathBuf>,
    /// Worker threads for the experiment grid (`0` = one per CPU).
    pub jobs: usize,
    /// Result-cache root; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Per-job watchdog deadline in seconds; `None` waits forever.
    pub job_timeout: Option<u64>,
    /// Write-ahead journal directory; `None` runs un-journalled unless
    /// `--run-id`/`--resume` imply the default directory.
    pub journal_dir: Option<PathBuf>,
    /// Explicit journal run id for a fresh run.
    pub run_id: Option<String>,
    /// Run id of a journalled run to resume.
    pub resume: Option<String>,
    /// Where grid cells execute.
    pub isolate: IsolateMode,
    /// Extra attempts for a crashed/hung cell; `None` = the default 1.
    pub retries: Option<u32>,
    /// On-disk trace store root for captured FSB streams; `None` keeps
    /// captures in memory only.
    pub trace_dir: Option<PathBuf>,
    /// Disable capture-once/replay-many: execute the co-simulation for
    /// every grid cell (the pre-replay behavior).
    pub no_replay: bool,
    /// Worker threads sharding each cell's sweep replay across boards
    /// (`0` = one per CPU). `None` follows `--jobs`. Sharding never
    /// changes output bytes — see `CoSimulation::replay_sweep_sharded`.
    pub replay_shards: Option<usize>,
    /// Chrome trace-event JSON output path (Perfetto-loadable); also
    /// enables the flight recorder for this run.
    pub trace_out: Option<PathBuf>,
    /// Suppress the live progress line on stderr.
    pub quiet: bool,
    /// Submit the grid to a `cmpsim serve` coordinator at this address
    /// instead of executing locally.
    pub connect: Option<String>,
    /// Hidden child mode: compute exactly this one cell and print the
    /// supervisor marker line (`__run-job <WORKLOAD>`).
    pub run_job: Option<WorkloadId>,
    /// The run's flight recorder; `Some` when `--trace-out` or
    /// journalling asked for a timeline, never in child mode (children
    /// record into their own recorder and ship events over the marker
    /// protocol).
    recorder: Option<Arc<FlightRecorder>>,
    /// The raw argument list as parsed — the base from which child argv
    /// is derived.
    raw: Vec<String>,
    started: Instant,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::ci(),
            seed: 2007,
            workloads: WorkloadId::all().to_vec(),
            json: false,
            metrics_out: None,
            jobs: 1,
            cache_dir: Some(PathBuf::from("results/cache")),
            job_timeout: None,
            journal_dir: None,
            run_id: None,
            resume: None,
            isolate: IsolateMode::Inline,
            retries: None,
            trace_dir: None,
            no_replay: false,
            replay_shards: None,
            trace_out: None,
            quiet: false,
            connect: None,
            run_job: None,
            recorder: None,
            raw: Vec::new(),
            started: Instant::now(),
        }
    }
}

impl Options {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    ///
    /// Also publishes the resolved replay shard count to
    /// [`cmpsim_core::set_replay_shards`], so every sweep replay in the
    /// process — including ones built deep inside a study, far from any
    /// CLI plumbing — picks it up ambiently.
    pub fn from_args() -> Self {
        match Options::parse(std::env::args().skip(1)) {
            Ok(opts) => {
                cmpsim_core::set_replay_shards(opts.effective_replay_shards());
                opts
            }
            Err(e) => usage(&e),
        }
    }

    /// The replay shard count these options describe: an explicit
    /// `--replay-shards` wins, otherwise the sweep replay follows
    /// `--jobs`; `0` for either means one shard per CPU.
    pub fn effective_replay_shards(&self) -> usize {
        match self.replay_shards.unwrap_or(self.jobs) {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }

    /// Parses an argument list. Any token that is not a recognized flag
    /// (or a recognized flag's value) is an error — a typo like
    /// `--sclae` must not silently run the default sweep.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut opts = Options {
            raw: args.into_iter().collect(),
            ..Options::default()
        };
        let mut args = opts.raw.clone().into_iter();
        // The hidden child entrypoint only counts in first position —
        // exactly where the supervisor puts it.
        if opts.raw.first().map(String::as_str) == Some(CHILD_ENTRY) {
            args.next();
            let w = args.next().ok_or("missing __run-job workload")?;
            opts.run_job = Some(
                w.parse()
                    .map_err(|_| format!("unknown workload `{w}` after {CHILD_ENTRY}"))?,
            );
        }
        while let Some(arg) = args.next() {
            let mut val = || args.next().ok_or_else(|| format!("missing {arg} value"));
            match arg.as_str() {
                "--scale" => {
                    opts.scale = parse_scale(&val()?).ok_or("bad --scale value")?;
                }
                "--seed" => {
                    opts.seed = val()?.parse().map_err(|_| "bad --seed value")?;
                }
                "--workloads" => {
                    opts.workloads = val()?
                        .split(',')
                        .map(|s| s.parse().map_err(|_| format!("unknown workload `{s}`")))
                        .collect::<Result<_, _>>()?;
                }
                "--json" => opts.json = true,
                "--metrics-out" => {
                    opts.metrics_out = Some(PathBuf::from(val()?));
                    opts.json = true;
                }
                "--jobs" => {
                    opts.jobs = val()?.parse().map_err(|_| "bad --jobs value")?;
                }
                "--cache-dir" => opts.cache_dir = Some(PathBuf::from(val()?)),
                "--no-cache" => opts.cache_dir = None,
                "--job-timeout" => {
                    let secs: u64 = val()?.parse().map_err(|_| "bad --job-timeout value")?;
                    if secs == 0 {
                        return Err("bad --job-timeout value".to_owned());
                    }
                    opts.job_timeout = Some(secs);
                }
                "--journal-dir" => opts.journal_dir = Some(PathBuf::from(val()?)),
                "--run-id" => opts.run_id = Some(val()?),
                "--resume" => opts.resume = Some(val()?),
                "--isolate" => opts.isolate = val()?.parse()?,
                "--retries" => {
                    opts.retries = Some(val()?.parse().map_err(|_| "bad --retries value")?);
                }
                "--trace-dir" => opts.trace_dir = Some(PathBuf::from(val()?)),
                "--no-replay" => opts.no_replay = true,
                "--replay-shards" => {
                    opts.replay_shards =
                        Some(val()?.parse().map_err(|_| "bad --replay-shards value")?);
                }
                "--trace-out" => opts.trace_out = Some(PathBuf::from(val()?)),
                "--quiet" => opts.quiet = true,
                "--connect" => opts.connect = Some(val()?),
                "--help" | "-h" => return Err(String::new()),
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        // The recorder exists whenever someone will consume a timeline:
        // an explicit `--trace-out`, or a journalled run (which gets the
        // JSONL sidecar next to its journal). A child never records here
        // — it ships events to its supervisor over the marker protocol —
        // and neither does a service client: the coordinator records the
        // run and writes the sidecar next to *its* journal (a client-side
        // recorder would clobber it with an empty timeline).
        let journalling =
            opts.resume.is_some() || opts.journal_dir.is_some() || opts.run_id.is_some();
        if opts.run_job.is_none()
            && opts.connect.is_none()
            && (opts.trace_out.is_some() || journalling)
        {
            opts.recorder = Some(FlightRecorder::new());
        }
        Ok(opts)
    }

    /// The run's flight recorder, if tracing is enabled.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// The runner configuration these options describe. The live
    /// progress line adapts to where stderr goes (carriage-return
    /// updates on a terminal, one complete line per update into a
    /// pipe), so only `--quiet` turns it off.
    pub fn runner(&self) -> RunnerConfig {
        RunnerConfig {
            workers: self.jobs,
            cache_dir: self.cache_dir.clone(),
            retries: self.retries.unwrap_or(1),
            progress: !self.quiet,
            job_timeout: self.job_timeout.map(std::time::Duration::from_secs),
            isolate: self.isolate,
            tracer: self.recorder.clone(),
            ..RunnerConfig::default()
        }
    }

    /// Like [`runner`](Options::runner), but wired for a crash-safe grid
    /// run of `experiment`: when journalling is requested
    /// (`--journal-dir`/`--run-id`/`--resume`), the config carries the
    /// journal and the process-global SIGINT/SIGTERM drain flag.
    pub fn runner_grid(&self, experiment: &str) -> RunnerConfig {
        let mut cfg = self.runner();
        if let Some(journal) = self.journal_config(experiment) {
            cfg.journal = Some(journal);
            cfg.shutdown = Some(shutdown::install());
        }
        cfg
    }

    /// The journal configuration these options describe, or `None` when
    /// journalling is off (the default: a plain run writes nothing).
    pub fn journal_config(&self, experiment: &str) -> Option<JournalConfig> {
        if self.resume.is_none() && self.journal_dir.is_none() && self.run_id.is_none() {
            return None;
        }
        let dir = self
            .journal_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("results/journal"));
        Some(match &self.resume {
            Some(id) => JournalConfig::new(dir, id.clone()).resuming(),
            None => {
                let id = self
                    .run_id
                    .clone()
                    .unwrap_or_else(|| grid::fresh_run_id(experiment));
                JournalConfig::new(dir, id)
            }
        })
    }

    /// The capture broker these options describe: `None` under
    /// `--no-replay` (every cell executes the co-simulation itself),
    /// disk-backed under `--trace-dir`, in-memory otherwise. Wrapped in
    /// an [`Arc`] so grid-cell closures can share one broker.
    pub fn capture_broker(&self) -> Option<Arc<CaptureBroker>> {
        if self.no_replay {
            return None;
        }
        Some(Arc::new(match &self.trace_dir {
            Some(dir) => CaptureBroker::with_store(dir.clone()),
            None => CaptureBroker::in_memory(),
        }))
    }

    /// The argv a supervised child uses to recompute one cell (minus the
    /// leading `__run-job <WORKLOAD>` pair, which the grid attaches):
    /// the original arguments with every parent-only concern stripped —
    /// parallelism, caching, journalling, isolation (a child must never
    /// recurse), timeouts (the parent enforces the deadline by killing
    /// the child), and output paths. The child always runs uncached:
    /// the parent stores the result it reports.
    pub fn child_args(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut args = self.raw.iter();
        if self.raw.first().map(String::as_str) == Some(CHILD_ENTRY) {
            args.next();
            args.next();
        }
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--jobs" | "--cache-dir" | "--metrics-out" | "--journal-dir" | "--run-id"
                | "--resume" | "--isolate" | "--job-timeout" | "--retries" | "--workloads"
                | "--trace-out" | "--connect" | "--replay-shards" => {
                    args.next();
                }
                "--json" | "--no-cache" | "--quiet" => {}
                other => out.push(other.to_owned()),
            }
        }
        out.push("--no-cache".to_owned());
        // The child re-resolves nothing: it gets the parent's effective
        // shard count (shards default to `--jobs`, which is stripped
        // above — a child must never recurse into a worker pool).
        out.push("--replay-shards".to_owned());
        out.push(self.effective_replay_shards().to_string());
        out
    }

    /// The exact command that resumes this run after an interruption or
    /// a crash: the original invocation with the journal identity pinned
    /// via `--resume`.
    pub fn resume_command(&self, run_id: &str) -> String {
        let bin = std::env::args().next().unwrap_or_else(|| "<bin>".into());
        let mut out = vec![bin];
        let mut args = self.raw.iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--resume" | "--run-id" => {
                    args.next();
                }
                other => out.push(other.to_owned()),
            }
        }
        out.push("--resume".to_owned());
        out.push(run_id.to_owned());
        out.join(" ")
    }

    /// Where the JSON twin goes: `--metrics-out` wins, otherwise
    /// `results/<name>.json` under `--json`, otherwise nowhere.
    pub fn json_path(&self, name: &str) -> Option<PathBuf> {
        match (&self.metrics_out, self.json) {
            (Some(p), _) => Some(p.clone()),
            (None, true) => Some(PathBuf::from("results").join(format!("{name}.json"))),
            (None, false) => None,
        }
    }

    /// The manifest stamped into every JSON twin.
    pub fn manifest(&self, name: &str) -> RunManifest {
        let mut m = RunManifest::new(name, env!("CARGO_PKG_VERSION"))
            .with_workloads(self.workloads.iter().copied())
            .with_scale_seed(self.scale, self.seed);
        m.wall_ms = self.started.elapsed().as_secs_f64() * 1e3;
        m
    }

    /// Writes `{manifest, results}` to the JSON twin path, if one was
    /// requested. Text output on stdout is unaffected; the path note
    /// goes to stderr.
    pub fn emit_json(&self, name: &str, results: JsonValue) {
        let Some(path) = self.json_path(name) else {
            return;
        };
        let doc = JsonValue::object([
            ("manifest", self.manifest(name).to_json()),
            ("results", results),
        ]);
        match cmpsim_telemetry::write_json_file(&path, &doc) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    /// Like [`emit_json`](Options::emit_json), but for a grid run: the
    /// manifest additionally records the runner counters, and the
    /// document carries the full per-job [`RunReport`] under `runner`.
    pub fn emit_json_runner(&self, name: &str, results: JsonValue, report: &RunReport) {
        self.emit_json_traced(name, results, report, None);
    }

    /// Like [`emit_json_runner`](Options::emit_json_runner), but also
    /// stamps the capture pipeline's counters into the manifest —
    /// how many FSB streams were captured live, reused from memory, and
    /// loaded from the `--trace-dir` store. Counters appear only when
    /// nonzero, so `--no-replay` runs (which pass `None`) and runs where
    /// nothing was captured produce the exact manifest they always did.
    pub fn emit_json_traced(
        &self,
        name: &str,
        results: JsonValue,
        report: &RunReport,
        trace: Option<CaptureCounters>,
    ) {
        let Some(path) = self.json_path(name) else {
            return;
        };
        let mut manifest = self
            .manifest(name)
            .config_entry("runner_jobs", report.workers)
            .config_entry("runner_ok", report.ok_count())
            .config_entry("runner_cached", report.cached_count())
            .config_entry("runner_failed", report.failed_count());
        // Recovery counters appear only when the crash-safety machinery
        // actually did something, so clean-run manifests are unchanged.
        if report.replayed_count() > 0 {
            manifest = manifest.config_entry("runner_replayed", report.replayed_count());
        }
        if report.recovered > 0 {
            manifest = manifest.config_entry("runner_recovered", report.recovered);
        }
        if report.skipped_count() > 0 {
            manifest = manifest.config_entry("runner_skipped", report.skipped_count());
        }
        if report.poisoned_count() > 0 {
            manifest = manifest.config_entry("runner_poisoned", report.poisoned_count());
        }
        if report.backoff_ms() > 0.0 {
            manifest = manifest.config_entry("runner_backoff_ms", report.backoff_ms() as u64);
        }
        if report.interrupted {
            manifest = manifest.config_entry("runner_interrupted", 1u64);
        }
        if let Some(t) = trace {
            if t.captures > 0 {
                manifest = manifest.config_entry("trace_captures", t.captures);
            }
            if t.memory_reuses > 0 {
                manifest = manifest.config_entry("trace_reuses", t.memory_reuses);
            }
            if t.disk_loads > 0 {
                manifest = manifest.config_entry("trace_disk_loads", t.disk_loads);
            }
        }
        let doc = JsonValue::object([
            ("manifest", manifest.to_json()),
            ("results", results),
            ("runner", report.to_json()),
        ]);
        match cmpsim_telemetry::write_json_file(&path, &doc) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    /// Where a journalled run's JSONL trace sidecar lives: next to the
    /// journal, as `<run-id>.trace.jsonl`.
    pub fn trace_jsonl_path(&self, run_id: &str) -> PathBuf {
        self.journal_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("results/journal"))
            .join(format!("{run_id}.trace.jsonl"))
    }

    /// Drains the flight recorder and exports the run's timeline: the
    /// Chrome trace-event document to `--trace-out` (if given) and the
    /// compact JSONL sidecar next to the journal (if the run was
    /// journalled, so `cmpsim report <run-id>` can find it). A no-op
    /// when tracing is off — untraced runs write nothing.
    pub fn export_trace(&self, spec: &GridSpec, report: &RunReport) {
        let Some(rec) = &self.recorder else {
            return;
        };
        let events = rec.drain_sorted();
        let lanes = rec.lane_names();
        let dropped = rec.dropped();
        let mut meta: Vec<(String, JsonValue)> = vec![
            (
                "experiment".to_owned(),
                JsonValue::from(spec.experiment.as_str()),
            ),
            ("seed".to_owned(), JsonValue::U64(self.seed)),
            ("workers".to_owned(), JsonValue::U64(report.workers as u64)),
        ];
        if let Some(run_id) = &report.run_id {
            meta.push(("run_id".to_owned(), JsonValue::from(run_id.as_str())));
        }
        if let Some(path) = &self.trace_out {
            let doc = cmpsim_telemetry::chrome_trace(&events, &lanes, &meta, dropped);
            match cmpsim_telemetry::write_json_file(path, &doc) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        if let Some(run_id) = &report.run_id {
            let path = self.trace_jsonl_path(run_id);
            if let Err(e) = ftrace::write_jsonl(&path, &meta, &lanes, &events, dropped) {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// Runs `spec`'s grid with crash-safety wired up from `opts`: the
/// journalled, optionally process-isolated equivalent of
/// [`cmpsim_core::grid::run_grid`].
///
/// In the hidden `__run-job` child mode this computes exactly one cell,
/// prints the supervisor marker line, and **exits** — the caller's
/// rendering code after this call never runs in a child.
pub fn run_grid<F>(opts: &Options, spec: &GridSpec, f: F) -> RunReport
where
    F: Fn(WorkloadId) -> JsonValue + Send + Sync + Clone + 'static,
{
    if let Some(w) = opts.run_job {
        run_child_cell(w, &|w| Ok(f(w)));
    }
    if let Some(addr) = &opts.connect {
        return submit_grid(opts, addr, spec);
    }
    let base = child_base(opts);
    grid::run_grid_supervised(
        spec,
        &opts.runner_grid(&spec.experiment),
        base.as_deref(),
        f,
    )
}

/// [`run_grid`] for fallible cells: the crash-safe equivalent of
/// [`cmpsim_core::grid::try_run_grid`]. A structured error in child mode
/// is reported over the marker protocol (exit 0 — reporting a failed
/// cell is a successful report), so the parent records it as
/// `Errored`, not as a crash.
pub fn try_run_grid<F>(opts: &Options, spec: &GridSpec, f: F) -> RunReport
where
    F: Fn(WorkloadId) -> Result<JsonValue, JobError> + Send + Sync + Clone + 'static,
{
    if let Some(w) = opts.run_job {
        run_child_cell(w, &f);
    }
    if let Some(addr) = &opts.connect {
        return submit_grid(opts, addr, spec);
    }
    let base = child_base(opts);
    grid::try_run_grid_supervised(
        spec,
        &opts.runner_grid(&spec.experiment),
        base.as_deref(),
        f,
    )
}

/// Submits `spec`'s grid to the coordinator at `addr` and blocks until
/// the streamed report is complete. The cells carry the exact
/// `__run-job` argv a local process-isolated run would use, and the
/// same cache keys — so the daemon's shared cache and a local cache
/// interchangeably address the same results, and the caller renders
/// byte-identical output from the returned report.
pub fn submit_grid(opts: &Options, addr: &str, spec: &GridSpec) -> RunReport {
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("error: cannot resolve the current executable: {e}");
            std::process::exit(1);
        }
    };
    let base = opts.child_args();
    let cells = spec
        .workloads
        .iter()
        .enumerate()
        .map(|(seq, &w)| {
            let mut args = vec![CHILD_ENTRY.to_owned(), w.to_string()];
            args.extend(base.iter().cloned());
            CellSpec {
                seq,
                key: spec.job_key(w).canonical(),
                label: w.to_string(),
                args,
            }
        })
        .collect();
    let sub = Submission {
        exe,
        experiment: spec.experiment.clone(),
        run_id: opts.resume.clone().or_else(|| opts.run_id.clone()),
        resume: opts.resume.is_some(),
        cells,
    };
    match cmpsim_service::submit(addr, &sub) {
        Ok(out) => {
            if !opts.quiet {
                eprintln!("service: run {} on {addr}", out.run_id);
            }
            out.report
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn child_base(opts: &Options) -> Option<Vec<String>> {
    (opts.isolate == IsolateMode::Process).then(|| opts.child_args())
}

fn run_child_cell(w: WorkloadId, f: &dyn Fn(WorkloadId) -> Result<JsonValue, JobError>) -> ! {
    use cmpsim_core::runner::{child_trace_requested, emit_result, emit_trace};
    if child_trace_requested() {
        // The supervisor is tracing: record this cell's spans into a
        // fresh recorder and ship them over the marker protocol, where
        // the parent grafts them under the cell's execute span.
        let rec = FlightRecorder::new();
        let lane = rec.lane("child");
        let res = {
            let _ctx = ftrace::install(lane, "", 0);
            f(w)
        };
        emit_trace(&rec.drain_sorted(), rec.dropped());
        emit_result(&res);
    } else {
        emit_result(&f(w));
    }
    std::process::exit(0);
}

/// Standard grid-run epilogue: prints the batch summary (and every
/// failure) to stderr, then exits non-zero if any job failed — after
/// the surviving results have been rendered and written. `--quiet`
/// drops the summary line; failures always print.
pub fn finish_runner(report: &RunReport, quiet: bool) {
    if !quiet {
        eprintln!("runner: {}", report.summary());
    }
    for (label, error) in report.failures() {
        eprintln!("runner: job `{label}` failed: {error}");
    }
    if report.failed_count() > 0 {
        std::process::exit(1);
    }
}

/// [`finish_runner`] for a crash-safe grid run: exports the run's
/// timeline (Chrome JSON under `--trace-out`, JSONL sidecar next to
/// the journal), and an interrupted batch additionally prints the
/// exact resume command before exiting non-zero.
pub fn finish_grid(opts: &Options, spec: &GridSpec, report: &RunReport) {
    opts.export_trace(spec, report);
    if report.interrupted {
        if let Some(run_id) = &report.run_id {
            eprintln!(
                "runner: interrupted — resume with: {}",
                opts.resume_command(run_id)
            );
        }
    }
    finish_runner(report, opts.quiet);
}

/// Parses a scale spec: `tiny`, `ci`, `paper`, or `1/N` with N a power
/// of two.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "tiny" => Some(Scale::tiny()),
        "ci" => Some(Scale::ci()),
        "paper" | "full" => Some(Scale::paper()),
        other => {
            let n: u64 = other.strip_prefix("1/")?.parse().ok()?;
            if n.is_power_of_two() {
                Some(Scale::with_shift(n.trailing_zeros()))
            } else {
                None
            }
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: <bin> [--scale tiny|ci|paper|1/N] [--seed N] [--workloads A,B,C]\n\
         \x20      [--json] [--metrics-out FILE] [--jobs N] [--cache-dir DIR] [--no-cache]\n\
         \x20      [--job-timeout SECONDS] [--journal-dir DIR] [--run-id ID] [--resume ID]\n\
         \x20      [--isolate inline|process] [--retries N] [--trace-dir DIR] [--no-replay]\n\
         \x20      [--replay-shards N] [--trace-out FILE] [--quiet] [--connect ADDR]\n\
         workloads: SNP, SVM-RFE, MDS, SHOT, FIMI, VIEWTYPE, PLSA, RSEARCH"
    );
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_specs() {
        assert_eq!(parse_scale("tiny"), Some(Scale::tiny()));
        assert_eq!(parse_scale("ci"), Some(Scale::ci()));
        assert_eq!(parse_scale("paper"), Some(Scale::paper()));
        assert_eq!(parse_scale("1/64"), Some(Scale::with_shift(6)));
        assert_eq!(parse_scale("1/3"), None);
        assert_eq!(parse_scale("bogus"), None);
    }

    #[test]
    fn default_options_cover_all_workloads() {
        let o = Options::default();
        assert_eq!(o.workloads.len(), 8);
        assert_eq!(o.seed, 2007);
        assert!(!o.json);
        assert_eq!(o.jobs, 1);
        assert_eq!(o.cache_dir, Some(PathBuf::from("results/cache")));
    }

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn unknown_flags_are_rejected() {
        // A typo must not silently run the default sweep.
        let err = parse(&["--sclae", "ci"]).unwrap_err();
        assert!(err.contains("unknown argument `--sclae`"), "{err}");
        assert!(parse(&["ci"]).is_err());
        assert!(parse(&["--workloads", "FIMI,BOGUS"])
            .unwrap_err()
            .contains("unknown workload `BOGUS`"));
        assert!(parse(&["--scale"]).unwrap_err().contains("missing"));
    }

    #[test]
    fn runner_flags_parse() {
        let o = parse(&["--jobs", "4", "--cache-dir", "/tmp/c"]).unwrap();
        assert_eq!(o.jobs, 4);
        assert_eq!(o.cache_dir, Some(PathBuf::from("/tmp/c")));
        let cfg = o.runner();
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.cache_dir, Some(PathBuf::from("/tmp/c")));
        // Last flag wins in either order.
        let o = parse(&["--cache-dir", "/tmp/c", "--no-cache"]).unwrap();
        assert_eq!(o.cache_dir, None);
        let o = parse(&["--no-cache", "--cache-dir", "/tmp/c"]).unwrap();
        assert_eq!(o.cache_dir, Some(PathBuf::from("/tmp/c")));
        assert!(parse(&["--jobs", "many"]).is_err());
    }

    #[test]
    fn capture_flags_parse() {
        // Default: replay on, in-memory broker.
        let o = parse(&[]).unwrap();
        assert_eq!(o.trace_dir, None);
        assert!(!o.no_replay);
        let broker = o.capture_broker().expect("replay is the default");
        assert!(broker.store().is_none());
        // --trace-dir: disk-backed broker.
        let o = parse(&["--trace-dir", "/tmp/t"]).unwrap();
        assert_eq!(o.trace_dir, Some(PathBuf::from("/tmp/t")));
        assert!(o.capture_broker().unwrap().store().is_some());
        // --no-replay: no broker at all.
        let o = parse(&["--no-replay", "--trace-dir", "/tmp/t"]).unwrap();
        assert!(o.no_replay);
        assert!(o.capture_broker().is_none());
        assert!(parse(&["--trace-dir"]).unwrap_err().contains("missing"));
    }

    #[test]
    fn connect_parses_and_never_reaches_children() {
        let o = parse(&["--connect", "127.0.0.1:7070", "--scale", "tiny"]).unwrap();
        assert_eq!(o.connect.as_deref(), Some("127.0.0.1:7070"));
        // A service client must not grow a local recorder even when the
        // run is journalled — the coordinator owns the trace sidecar.
        let o = parse(&["--connect", "127.0.0.1:7070", "--run-id", "x"]).unwrap();
        assert!(o.recorder().is_none());
        // A daemon worker's child must never try to reconnect.
        let child = o.child_args();
        assert!(!child.iter().any(|a| a == "--connect"));
        assert!(parse(&["--connect"]).unwrap_err().contains("missing"));
    }

    #[test]
    fn replay_shards_resolution() {
        // Default: the sweep replay follows --jobs.
        let o = parse(&["--jobs", "3"]).unwrap();
        assert_eq!(o.replay_shards, None);
        assert_eq!(o.effective_replay_shards(), 3);
        // Explicit --replay-shards wins over --jobs.
        let o = parse(&["--jobs", "3", "--replay-shards", "5"]).unwrap();
        assert_eq!(o.effective_replay_shards(), 5);
        // 0 means one shard per CPU, same convention as --jobs 0.
        let o = parse(&["--replay-shards", "0"]).unwrap();
        assert!(o.effective_replay_shards() >= 1);
        assert!(parse(&["--replay-shards", "many"]).is_err());
        assert!(parse(&["--replay-shards"]).unwrap_err().contains("missing"));
    }

    #[test]
    fn replay_shards_flow_to_children_resolved() {
        // The child's argv pins the parent's *effective* shard count:
        // the default follows --jobs, which child_args strips.
        let o = parse(&["--jobs", "4"]).unwrap();
        let child = o.child_args();
        assert!(child.windows(2).any(|w| w == ["--replay-shards", "4"]));
        assert!(!child.iter().any(|a| a == "--jobs"));
        // An explicit flag is stripped and re-appended resolved, not
        // duplicated.
        let o = parse(&["--replay-shards", "2", "--jobs", "8"]).unwrap();
        let child = o.child_args();
        let n = child.iter().filter(|a| *a == "--replay-shards").count();
        assert_eq!(n, 1);
        assert!(child.windows(2).any(|w| w == ["--replay-shards", "2"]));
    }

    #[test]
    fn capture_flags_flow_to_children() {
        // A supervised child must see the same capture configuration as
        // its parent, so a process-isolated cell replays from the same
        // on-disk store instead of silently re-executing.
        let o = parse(&["--trace-dir", "/tmp/t", "--no-replay", "--jobs", "4"]).unwrap();
        let child = o.child_args();
        assert!(child.windows(2).any(|w| w == ["--trace-dir", "/tmp/t"]));
        assert!(child.iter().any(|a| a == "--no-replay"));
        assert!(!child.iter().any(|a| a == "--jobs"));
    }

    #[test]
    fn json_path_resolution() {
        let mut o = Options::default();
        assert_eq!(o.json_path("fig4"), None);
        o.json = true;
        assert_eq!(
            o.json_path("fig4"),
            Some(PathBuf::from("results/fig4.json"))
        );
        o.metrics_out = Some(PathBuf::from("/tmp/x.json"));
        assert_eq!(o.json_path("fig4"), Some(PathBuf::from("/tmp/x.json")));
    }

    #[test]
    fn manifest_carries_run_identity() {
        let o = Options::default();
        let m = o.manifest("table2");
        assert_eq!(m.experiment, "table2");
        assert_eq!(m.seed, 2007);
        assert_eq!(m.workloads.len(), 8);
        assert!(m.wall_ms >= 0.0);
    }
}
