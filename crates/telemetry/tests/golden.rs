//! Golden-file tests: the JSON and CSV exporters are a wire format that
//! downstream tooling (plot scripts, result diffing) parses, so their
//! exact byte-for-byte output is pinned here.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cmpsim-telemetry --test golden
//! ```

use cmpsim_telemetry::{Labels, MetricRegistry, RunManifest, TelemetryReport, Timeline};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; run with UPDATE_GOLDEN=1 if intentional"
    );
}

/// A fully deterministic report: fixed counters, a three-interval
/// timeline, a manifest with pinned version and wall time, no spans
/// (span durations are wall-clock and would not be reproducible).
fn fixture() -> TelemetryReport {
    let mut manifest = RunManifest::new("golden", "0.0.0")
        .with_workloads(["FIMI", "SHOT"])
        .with_scale_seed("1:256", 7)
        .config_entry("cores", 2u64)
        .config_entry("llc_bytes", 1u64 << 20)
        .config_entry("prefetch", false);
    manifest.wall_ms = 12.5;
    let mut r = TelemetryReport::new(manifest);
    r.metrics.count("instructions", &Labels::none(), 100_000);
    for (core, misses) in [(0u32, 40u64), (1, 25)] {
        let l = Labels::none().with("core", core.to_string());
        r.metrics.count("llc_accesses", &l, 500 + u64::from(core));
        r.metrics.count("llc_misses", &l, misses);
    }
    r.metrics.gauge("llc_mpki", &Labels::none(), 0.65);
    for v in [1u64, 2, 3, 900] {
        r.metrics.observe("slice_len", &Labels::none(), v);
    }
    r.timeline.push_cumulative(50_000, 30_000, 400, 20);
    r.timeline.push_cumulative(100_000, 70_000, 800, 45);
    r.timeline.push_cumulative(120_000, 100_000, 1001, 65);
    r
}

#[test]
fn report_json_matches_golden() {
    let doc = fixture().to_json();
    check(
        "report.json",
        &format!("{}\n", doc.to_json_pretty().trim_end()),
    );
}

#[test]
fn metrics_csv_matches_golden() {
    check("metrics.csv", &fixture().metrics.to_csv());
}

#[test]
fn timeline_csv_matches_golden() {
    check("intervals.csv", &fixture().timeline.to_csv());
}

#[test]
fn golden_json_reparses_to_identical_document() {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        // Regeneration pass: report.json may not be written yet.
        return;
    }
    let text = std::fs::read_to_string(golden_path("report.json")).unwrap();
    let reparsed = cmpsim_telemetry::parse(&text).unwrap();
    assert_eq!(reparsed, fixture().to_json());
}

#[test]
fn timeline_differencing_is_visible_in_golden() {
    // Guard against the fixture silently degenerating: the third interval
    // must carry the expected deltas.
    let t: &Timeline = &fixture().timeline;
    let r = t.records()[2];
    assert_eq!(r.instructions, 30_000);
    assert_eq!(r.accesses, 201);
    assert_eq!(r.misses, 20);
}

#[test]
fn registry_roundtrip_through_json_array() {
    let reg: MetricRegistry = fixture().metrics;
    let arr = reg.to_json();
    let names: Vec<_> = arr
        .as_array()
        .unwrap()
        .iter()
        .map(|m| m.get("name").unwrap().as_str().unwrap().to_owned())
        .collect();
    assert_eq!(
        names,
        [
            "instructions",
            "llc_accesses",
            "llc_misses",
            "llc_accesses",
            "llc_misses",
            "llc_mpki",
            "slice_len"
        ]
    );
}
