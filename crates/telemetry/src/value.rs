//! A minimal JSON document model: serializer and parser, no external
//! dependencies.
//!
//! Integers are kept exact (`u64`/`i64` variants) because counter values
//! such as instruction counts overflow an `f64` mantissa long before they
//! overflow 64 bits. Objects preserve insertion order so exported
//! documents are stable and diffable (the golden-file tests rely on
//! this).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number (non-finite values serialize as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, JsonValue)>>(pairs: I) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array<I: IntoIterator<Item = JsonValue>>(items: I) -> JsonValue {
        JsonValue::Array(items.into_iter().collect())
    }

    /// Looks up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Descends through nested objects along `path`.
    pub fn get_path(&self, path: &[&str]) -> Option<&JsonValue> {
        path.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert losslessly when possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::U64(v) => Some(v as f64),
            JsonValue::I64(v) => Some(v as f64),
            JsonValue::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => {
                if v.is_finite() {
                    // `{:?}` is the shortest round-trippable form and
                    // always contains a `.` or exponent, so integers and
                    // floats stay distinguishable.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                // Scalar-only arrays (number series, histogram buckets)
                // stay on one line even in pretty mode — a 3000-point
                // sampler series as one line per element would dwarf the
                // rest of the document.
                let scalars_only = !items
                    .iter()
                    .any(|v| matches!(v, JsonValue::Array(_) | JsonValue::Object(_)));
                let indent = if scalars_only { None } else { indent };
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            JsonValue::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::U64(u64::from(v))
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        if v >= 0 {
            JsonValue::U64(v as u64)
        } else {
            JsonValue::I64(v)
        }
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_owned())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Parses a JSON document (the counterpart of [`JsonValue::to_json`],
/// used by the round-trip tests and by consumers of emitted metrics
/// files).
pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|b| std::str::from_utf8(b).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // serializer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::I64(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| JsonParseError {
                offset: start,
                message: format!("bad number `{text}`"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_scalars() {
        assert_eq!(JsonValue::Null.to_json(), "null");
        assert_eq!(JsonValue::Bool(true).to_json(), "true");
        assert_eq!(JsonValue::U64(42).to_json(), "42");
        assert_eq!(JsonValue::I64(-3).to_json(), "-3");
        assert_eq!(JsonValue::F64(1.5).to_json(), "1.5");
        assert_eq!(JsonValue::F64(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Str("a\"b".into()).to_json(), "\"a\\\"b\"");
    }

    #[test]
    fn serializes_structures() {
        let v = JsonValue::object([
            ("name", JsonValue::from("fimi")),
            ("xs", JsonValue::array([1u64.into(), 2u64.into()])),
        ]);
        assert_eq!(v.to_json(), r#"{"name":"fimi","xs":[1,2]}"#);
    }

    #[test]
    fn pretty_indents() {
        let v = JsonValue::object([("a", JsonValue::U64(1))]);
        assert_eq!(v.to_json_pretty(), "{\n  \"a\": 1\n}\n");
    }

    #[test]
    fn large_integers_stay_exact() {
        let v = JsonValue::U64(u64::MAX);
        let back = parse(&v.to_json()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn roundtrip_nested() {
        let v = JsonValue::object([
            (
                "manifest",
                JsonValue::object([("seed", JsonValue::U64(2007))]),
            ),
            (
                "series",
                JsonValue::array([
                    JsonValue::F64(0.25),
                    JsonValue::Null,
                    JsonValue::Bool(false),
                ]),
            ),
            ("note", JsonValue::from("tab\there\nnewline")),
        ]);
        assert_eq!(parse(&v.to_json()).unwrap(), v);
        assert_eq!(parse(&v.to_json_pretty()).unwrap(), v);
    }

    #[test]
    fn get_path_descends() {
        let v = JsonValue::object([("a", JsonValue::object([("b", JsonValue::U64(7))]))]);
        assert_eq!(v.get_path(&["a", "b"]).and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get_path(&["a", "zz"]), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_negatives() {
        let v = parse(" { \"x\" : [ -1 , 2.5e1 ] } ").unwrap();
        assert_eq!(
            v.get("x").unwrap().as_array().unwrap()[0],
            JsonValue::I64(-1)
        );
        assert_eq!(
            v.get("x").unwrap().as_array().unwrap()[1],
            JsonValue::F64(25.0)
        );
    }
}
