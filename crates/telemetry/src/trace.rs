//! Flight-recorder tracing: causal span timelines for a whole grid run.
//!
//! The paper could only report end-to-end wall-clock per experiment;
//! this module records *where* that time goes. A [`FlightRecorder`]
//! owns a set of per-worker **lanes** — each lane is an independently
//! locked, bounded event buffer, so recording on one worker never
//! contends with another — and allocates span ids from one atomic
//! counter so parent/child edges are unambiguous across lanes and even
//! across processes (child events are re-based and re-parented by
//! [`graft`]).
//!
//! Overflow policy: each lane holds at most `capacity` events; once
//! full, **new events are dropped** (the timeline keeps its oldest,
//! causally-rooted prefix) and counted in a shared dropped-event
//! counter that every exporter must surface — overflow is never silent.
//!
//! Recording is opt-in per thread: [`install`] binds a lane + cell
//! label + root span to the current thread, and the free functions
//! [`span`], [`instant`], and [`counter`] are no-ops when nothing is
//! installed. Code paths instrumented with them are byte-identical in
//! behavior when tracing is off.

use crate::value::JsonValue;
use std::cell::RefCell;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-lane event capacity (events beyond it are dropped and
/// counted).
pub const DEFAULT_LANE_CAPACITY: usize = 1 << 16;

/// What one [`TraceEvent`] describes.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A completed span with a duration.
    Span {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time marker (retry, cache hit, poison, ...).
    Instant,
    /// A sampled counter value (queue depth, utilization, ...).
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One recorded event: a span, an instant marker, or a counter sample.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (stage or marker, e.g. `execute`, `cache-hit`).
    pub name: String,
    /// Grid-cell label the event belongs to (empty for pool-level
    /// events). Primary sort key on export, so traces are comparable
    /// across `--jobs N`.
    pub cell: String,
    /// Recording lane id (one per worker, 0 = pool).
    pub lane: u32,
    /// Span id (0 for instants/counters).
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Start time in nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// Span / instant / counter payload.
    pub kind: EventKind,
    /// Free-form key/value annotations.
    pub args: Vec<(String, JsonValue)>,
}

impl TraceEvent {
    /// Duration in nanoseconds (0 for instants and counters).
    pub fn dur_ns(&self) -> u64 {
        match self.kind {
            EventKind::Span { dur_ns } => dur_ns,
            _ => 0,
        }
    }

    /// Compact JSON form (used by the JSONL sidecar and the child
    /// marker protocol).
    pub fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        fields.push(("name".to_owned(), JsonValue::from(self.name.as_str())));
        if !self.cell.is_empty() {
            fields.push(("cell".to_owned(), JsonValue::from(self.cell.as_str())));
        }
        fields.push(("lane".to_owned(), JsonValue::U64(u64::from(self.lane))));
        if self.id != 0 {
            fields.push(("id".to_owned(), JsonValue::U64(self.id)));
        }
        if self.parent != 0 {
            fields.push(("parent".to_owned(), JsonValue::U64(self.parent)));
        }
        fields.push(("ts_ns".to_owned(), JsonValue::U64(self.ts_ns)));
        match self.kind {
            EventKind::Span { dur_ns } => {
                fields.push(("ph".to_owned(), JsonValue::from("span")));
                fields.push(("dur_ns".to_owned(), JsonValue::U64(dur_ns)));
            }
            EventKind::Instant => fields.push(("ph".to_owned(), JsonValue::from("instant"))),
            EventKind::Counter { value } => {
                fields.push(("ph".to_owned(), JsonValue::from("counter")));
                fields.push(("value".to_owned(), JsonValue::F64(value)));
            }
        }
        if !self.args.is_empty() {
            fields.push(("args".to_owned(), JsonValue::Object(self.args.clone())));
        }
        JsonValue::Object(fields)
    }

    /// Parses the compact JSON form back; `None` on shape mismatch.
    pub fn from_json(doc: &JsonValue) -> Option<TraceEvent> {
        let name = doc.get("name")?.as_str()?.to_owned();
        let kind = match doc.get("ph")?.as_str()? {
            "span" => EventKind::Span {
                dur_ns: doc.get("dur_ns")?.as_u64()?,
            },
            "instant" => EventKind::Instant,
            "counter" => EventKind::Counter {
                value: doc.get("value")?.as_f64()?,
            },
            _ => return None,
        };
        let get_u64 = |k: &str| doc.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
        let args = match doc.get("args") {
            Some(JsonValue::Object(fields)) => fields.clone(),
            _ => Vec::new(),
        };
        Some(TraceEvent {
            name,
            cell: doc
                .get("cell")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_owned(),
            lane: get_u64("lane") as u32,
            id: get_u64("id"),
            parent: get_u64("parent"),
            ts_ns: get_u64("ts_ns"),
            kind,
            args,
        })
    }
}

#[derive(Debug)]
struct LaneShared {
    name: String,
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

/// The shared flight recorder: epoch clock, span-id allocator, lane
/// registry, and the dropped-event counter.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    next_id: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    lanes: Mutex<Vec<LaneShared>>,
}

impl FlightRecorder {
    /// A recorder with the default per-lane capacity.
    pub fn new() -> Arc<FlightRecorder> {
        FlightRecorder::with_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// A recorder whose lanes each hold at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            capacity,
            lanes: Mutex::new(Vec::new()),
        })
    }

    /// Registers a new lane named `name` (e.g. `worker-3`).
    pub fn lane(self: &Arc<FlightRecorder>, name: &str) -> Lane {
        let events = Arc::new(Mutex::new(Vec::new()));
        let mut lanes = self.lanes.lock().unwrap();
        let id = lanes.len() as u32;
        lanes.push(LaneShared {
            name: name.to_owned(),
            events: Arc::clone(&events),
        });
        Lane {
            rec: Arc::clone(self),
            id,
            events,
        }
    }

    /// Nanoseconds since the recorder was created (monotonic).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Allocates a fresh span id (never 0).
    pub fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Events dropped so far because a lane was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Folds in events dropped by an external recorder (e.g. a child
    /// process's count from its trace marker) so the exported total
    /// stays honest.
    pub fn add_dropped(&self, n: u64) {
        self.dropped.fetch_add(n, Ordering::Relaxed);
    }

    /// Registered lanes as `(id, name)` pairs, in registration order.
    pub fn lane_names(&self) -> Vec<(u32, String)> {
        self.lanes
            .lock()
            .unwrap()
            .iter()
            .enumerate()
            .map(|(i, l)| (i as u32, l.name.clone()))
            .collect()
    }

    /// Takes every recorded event, sorted by `(cell, ts_ns, id, name)`
    /// so the export order does not depend on worker interleaving —
    /// a `--jobs 8` trace has the same structure as `--jobs 1`.
    pub fn drain_sorted(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for lane in self.lanes.lock().unwrap().iter() {
            all.append(&mut lane.events.lock().unwrap());
        }
        all.sort_by(|a, b| {
            (a.cell.as_str(), a.ts_ns, a.id, a.name.as_str()).cmp(&(
                b.cell.as_str(),
                b.ts_ns,
                b.id,
                b.name.as_str(),
            ))
        });
        all
    }
}

/// One recording lane: an independently locked bounded buffer bound to
/// a recorder. Cloning shares the buffer.
#[derive(Debug, Clone)]
pub struct Lane {
    rec: Arc<FlightRecorder>,
    id: u32,
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl Lane {
    /// The owning recorder.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.rec
    }

    /// This lane's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Records a fully formed event (the lane id is stamped here).
    /// Dropped — and counted — when the lane is at capacity.
    pub fn push(&self, mut ev: TraceEvent) {
        ev.lane = self.id;
        let mut events = self.events.lock().unwrap();
        if events.len() >= self.rec.capacity {
            self.rec.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            events.push(ev);
        }
    }

    /// Opens a span; it records itself when ended or dropped.
    pub fn begin(&self, name: &str, cell: &str, parent: u64) -> OpenSpan {
        OpenSpan {
            inner: Some(OpenInner {
                lane: self.clone(),
                name: name.to_owned(),
                cell: cell.to_owned(),
                id: self.rec.next_span_id(),
                parent,
                ts_ns: self.rec.now_ns(),
                args: Vec::new(),
            }),
        }
    }

    /// Records an instant marker.
    pub fn instant(&self, name: &str, cell: &str, parent: u64, args: Vec<(String, JsonValue)>) {
        self.push(TraceEvent {
            name: name.to_owned(),
            cell: cell.to_owned(),
            lane: self.id,
            id: 0,
            parent,
            ts_ns: self.rec.now_ns(),
            kind: EventKind::Instant,
            args,
        });
    }

    /// Records a counter sample.
    pub fn counter(&self, name: &str, cell: &str, value: f64) {
        self.push(TraceEvent {
            name: name.to_owned(),
            cell: cell.to_owned(),
            lane: self.id,
            id: 0,
            parent: 0,
            ts_ns: self.rec.now_ns(),
            kind: EventKind::Counter { value },
            args: Vec::new(),
        });
    }
}

#[derive(Debug)]
struct OpenInner {
    lane: Lane,
    name: String,
    cell: String,
    id: u64,
    parent: u64,
    ts_ns: u64,
    args: Vec<(String, JsonValue)>,
}

/// An in-flight span from [`Lane::begin`]; records itself on
/// [`end`](OpenSpan::end) or drop.
#[derive(Debug)]
pub struct OpenSpan {
    inner: Option<OpenInner>,
}

impl OpenSpan {
    /// The span's id, for parenting children under it.
    pub fn span_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }

    /// Attaches an annotation.
    pub fn arg(&mut self, key: &str, value: impl Into<JsonValue>) {
        if let Some(i) = self.inner.as_mut() {
            i.args.push((key.to_owned(), value.into()));
        }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(i) = self.inner.take() {
            let dur_ns = i.lane.rec.now_ns().saturating_sub(i.ts_ns);
            i.lane.push(TraceEvent {
                name: i.name,
                cell: i.cell,
                lane: 0,
                id: i.id,
                parent: i.parent,
                ts_ns: i.ts_ns,
                kind: EventKind::Span { dur_ns },
                args: i.args,
            });
        }
    }
}

impl Drop for OpenSpan {
    fn drop(&mut self) {
        self.finish();
    }
}

// ---------------------------------------------------------------------
// Thread-local recording context
// ---------------------------------------------------------------------

struct ActiveCtx {
    lane: Lane,
    cell: String,
    stack: Vec<u64>,
}

thread_local! {
    static CTX: RefCell<Option<ActiveCtx>> = const { RefCell::new(None) };
}

/// Binds `lane` + `cell` + `root` span to the current thread so the
/// context-free [`span`]/[`instant`]/[`counter`] calls below record
/// into it. The previous binding (if any) is restored when the guard
/// drops.
pub fn install(lane: Lane, cell: &str, root: u64) -> CtxGuard {
    let prev = CTX.with(|c| {
        c.borrow_mut().replace(ActiveCtx {
            lane,
            cell: cell.to_owned(),
            stack: vec![root],
        })
    });
    CtxGuard { prev }
}

/// Restores the previously installed context on drop (see [`install`]).
pub struct CtxGuard {
    prev: Option<ActiveCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CTX.with(|c| *c.borrow_mut() = prev);
    }
}

/// Whether a recording context is installed on this thread.
pub fn active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Captures the current thread's tracing context — the lane, the cell
/// name, and the innermost open span id — so a helper thread can record
/// under it. Returns `None` when no context is installed.
///
/// The returned tuple is exactly the argument list of [`install`]:
/// spawned workers call `install(lane, &cell, parent)` (or open spans
/// directly on the cloned [`Lane`], which shares its buffer) and their
/// events nest under the span that was open at capture time. This is
/// how sweep-replay shards appear as children of the sweep's `replay`
/// span.
pub fn snapshot() -> Option<(Lane, String, u64)> {
    CTX.with(|c| {
        c.borrow().as_ref().map(|ctx| {
            (
                ctx.lane.clone(),
                ctx.cell.clone(),
                ctx.stack.last().copied().unwrap_or(0),
            )
        })
    })
}

/// Opens a span under the current context; a silent no-op guard when no
/// context is installed (the tracing-off fast path — no clock read, no
/// allocation).
pub fn span(name: &str) -> SpanGuard {
    CTX.with(|c| {
        let mut ctx = c.borrow_mut();
        let Some(ctx) = ctx.as_mut() else {
            return SpanGuard { active: None };
        };
        let id = ctx.lane.rec.next_span_id();
        let parent = ctx.stack.last().copied().unwrap_or(0);
        ctx.stack.push(id);
        SpanGuard {
            active: Some(ActiveSpan {
                lane: ctx.lane.clone(),
                name: name.to_owned(),
                cell: ctx.cell.clone(),
                id,
                parent,
                ts_ns: ctx.lane.rec.now_ns(),
            }),
        }
    })
}

/// Records an instant marker under the current context; no-op without
/// one.
pub fn instant(name: &str, args: Vec<(String, JsonValue)>) {
    CTX.with(|c| {
        let ctx = c.borrow();
        if let Some(ctx) = ctx.as_ref() {
            let parent = ctx.stack.last().copied().unwrap_or(0);
            ctx.lane.instant(name, &ctx.cell, parent, args);
        }
    });
}

/// Records a counter sample under the current context; no-op without
/// one.
pub fn counter(name: &str, value: f64) {
    CTX.with(|c| {
        let ctx = c.borrow();
        if let Some(ctx) = ctx.as_ref() {
            ctx.lane.counter(name, &ctx.cell, value);
        }
    });
}

struct ActiveSpan {
    lane: Lane,
    name: String,
    cell: String,
    id: u64,
    parent: u64,
    ts_ns: u64,
}

/// Guard from [`span`]; closes and records the span on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.active.take() else { return };
        let dur_ns = s.lane.rec.now_ns().saturating_sub(s.ts_ns);
        CTX.with(|c| {
            let mut ctx = c.borrow_mut();
            if let Some(ctx) = ctx.as_mut() {
                if ctx.stack.last() == Some(&s.id) {
                    ctx.stack.pop();
                }
            }
        });
        s.lane.push(TraceEvent {
            name: s.name,
            cell: s.cell,
            lane: 0,
            id: s.id,
            parent: s.parent,
            ts_ns: s.ts_ns,
            kind: EventKind::Span { dur_ns },
            args: Vec::new(),
        });
    }
}

// ---------------------------------------------------------------------
// Cross-process grafting and batch (de)serialization
// ---------------------------------------------------------------------

/// Serializes a batch of events (plus the dropped count) as one JSON
/// object — the payload of the `__cmpsim_trace__` child marker line.
pub fn events_to_json(events: &[TraceEvent], dropped: u64) -> JsonValue {
    JsonValue::object([
        ("dropped", JsonValue::U64(dropped)),
        (
            "events",
            JsonValue::Array(events.iter().map(TraceEvent::to_json).collect()),
        ),
    ])
}

/// Parses a batch serialized by [`events_to_json`]; malformed events
/// are skipped rather than failing the batch.
pub fn events_from_json(doc: &JsonValue) -> Option<(Vec<TraceEvent>, u64)> {
    let dropped = doc.get("dropped").and_then(JsonValue::as_u64).unwrap_or(0);
    let events = doc
        .get("events")?
        .as_array()?
        .iter()
        .filter_map(TraceEvent::from_json)
        .collect();
    Some((events, dropped))
}

/// Grafts events recorded elsewhere (another thread's batch or a child
/// process's marker payload) into `lane`: span ids are re-allocated
/// from this recorder, root events are re-parented under `parent`,
/// timestamps are re-based by `base_ts_ns` (the receiving clock's time
/// when the remote recorder started), every event is stamped with
/// `cell`, and `tag` annotations (e.g. `proc: child`) are appended.
pub fn graft(
    lane: &Lane,
    events: Vec<TraceEvent>,
    cell: &str,
    parent: u64,
    base_ts_ns: u64,
    tag: &[(&str, JsonValue)],
) {
    let mut remap = std::collections::HashMap::new();
    for ev in &events {
        if ev.id != 0 {
            remap.insert(ev.id, lane.recorder().next_span_id());
        }
    }
    for mut ev in events {
        ev.cell = cell.to_owned();
        ev.ts_ns = ev.ts_ns.saturating_add(base_ts_ns);
        ev.id = if ev.id == 0 { 0 } else { remap[&ev.id] };
        ev.parent = match remap.get(&ev.parent) {
            Some(new) => *new,
            None => parent,
        };
        for (k, v) in tag {
            ev.args.push(((*k).to_owned(), v.clone()));
        }
        lane.push(ev);
    }
}

// ---------------------------------------------------------------------
// JSONL sidecar (written next to the journal)
// ---------------------------------------------------------------------

/// A parsed trace JSONL sidecar.
#[derive(Debug)]
pub struct TraceFile {
    /// Header metadata (experiment, run id, workers, ...).
    pub meta: JsonValue,
    /// Registered lanes as `(id, name)` pairs.
    pub lanes: Vec<(u32, String)>,
    /// Every event, in the (sorted) order it was written.
    pub events: Vec<TraceEvent>,
    /// Dropped-event count at export time.
    pub dropped: u64,
}

/// Writes the compact JSONL sidecar: one `trace_header` line, one line
/// per event, one `trace_end` trailer carrying the totals.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_jsonl(
    path: &Path,
    meta: &[(String, JsonValue)],
    lanes: &[(u32, String)],
    events: &[TraceEvent],
    dropped: u64,
) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    let header = JsonValue::object([
        ("kind", JsonValue::from("trace_header")),
        ("meta", JsonValue::Object(meta.to_vec())),
        (
            "lanes",
            JsonValue::Array(
                lanes
                    .iter()
                    .map(|(id, name)| {
                        JsonValue::object([
                            ("id", JsonValue::U64(u64::from(*id))),
                            ("name", JsonValue::from(name.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    writeln!(out, "{}", header.to_json())?;
    for ev in events {
        writeln!(out, "{}", ev.to_json().to_json())?;
    }
    let trailer = JsonValue::object([
        ("kind", JsonValue::from("trace_end")),
        ("events", JsonValue::U64(events.len() as u64)),
        ("dropped", JsonValue::U64(dropped)),
    ]);
    writeln!(out, "{}", trailer.to_json())?;
    Ok(())
}

/// Reads a sidecar written by [`write_jsonl`]. Unparseable lines are
/// skipped (a torn tail loses events, not the file).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn read_jsonl(path: &Path) -> std::io::Result<TraceFile> {
    let text = std::fs::read_to_string(path)?;
    let mut file = TraceFile {
        meta: JsonValue::Object(Vec::new()),
        lanes: Vec::new(),
        events: Vec::new(),
        dropped: 0,
    };
    for line in text.lines() {
        let Ok(doc) = crate::value::parse(line) else {
            continue;
        };
        match doc.get("kind").and_then(JsonValue::as_str) {
            Some("trace_header") => {
                if let Some(meta) = doc.get("meta") {
                    file.meta = meta.clone();
                }
                if let Some(lanes) = doc.get("lanes").and_then(JsonValue::as_array) {
                    for l in lanes {
                        let (Some(id), Some(name)) = (
                            l.get("id").and_then(JsonValue::as_u64),
                            l.get("name").and_then(JsonValue::as_str),
                        ) else {
                            continue;
                        };
                        file.lanes.push((id as u32, name.to_owned()));
                    }
                }
            }
            Some("trace_end") => {
                file.dropped = doc.get("dropped").and_then(JsonValue::as_u64).unwrap_or(0);
            }
            _ => {
                if let Some(ev) = TraceEvent::from_json(&doc) {
                    file.events.push(ev);
                }
            }
        }
    }
    Ok(file)
}

// ---------------------------------------------------------------------
// Aggregation (the data model behind `cmpsim report`)
// ---------------------------------------------------------------------

/// Latency statistics over one span name (e.g. `journal-append`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencyStats {
    /// Number of spans observed.
    pub count: usize,
    /// Median duration in nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile duration in nanoseconds.
    pub p90_ns: u64,
    /// Maximum duration in nanoseconds.
    pub max_ns: u64,
}

impl LatencyStats {
    /// Computes stats from raw durations (empty input → all zeros).
    pub fn from_durations(mut ns: Vec<u64>) -> LatencyStats {
        if ns.is_empty() {
            return LatencyStats::default();
        }
        ns.sort_unstable();
        let n = ns.len();
        LatencyStats {
            count: n,
            p50_ns: ns[(n - 1) / 2],
            p90_ns: ns[(n - 1) * 9 / 10],
            max_ns: ns[n - 1],
        }
    }
}

/// Per-cell rollup: total duration and per-stage sums.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// The cell label (workload name).
    pub label: String,
    /// Duration of the cell's umbrella span in nanoseconds.
    pub total_ns: u64,
    /// Summed span durations by name within this cell, sorted by name.
    pub stages: Vec<(String, u64)>,
}

impl CellSummary {
    /// Summed nanoseconds of stage `name` in this cell.
    pub fn stage_ns(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, ns)| *ns)
    }
}

/// Aggregated view of one run's trace, the data model behind
/// `cmpsim report`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Summed span durations by name across the run, sorted by name.
    /// Cell umbrella spans (`cell:*`) are excluded.
    pub stage_ns: Vec<(String, u64)>,
    /// Per-cell rollups, slowest first (ties broken by label).
    pub cells: Vec<CellSummary>,
    /// Journal append+fsync latency distribution.
    pub journal_append: LatencyStats,
    /// Worker utilization samples as `(lane, fraction)`.
    pub utilization: Vec<(u32, f64)>,
    /// Counts of instant markers by name, sorted by name.
    pub markers: Vec<(String, u64)>,
    /// Total events in the trace.
    pub events: usize,
    /// Events dropped at record time (never silent).
    pub dropped: u64,
}

/// Name prefix of per-cell umbrella spans.
pub const CELL_SPAN_PREFIX: &str = "cell:";

impl TraceSummary {
    /// Aggregates a run's events (as drained or read back from JSONL).
    pub fn from_events(events: &[TraceEvent], dropped: u64) -> TraceSummary {
        use std::collections::BTreeMap;
        let mut stage_ns: BTreeMap<String, u64> = BTreeMap::new();
        let mut cells: BTreeMap<String, (u64, BTreeMap<String, u64>)> = BTreeMap::new();
        let mut appends: Vec<u64> = Vec::new();
        let mut utilization: Vec<(u32, f64)> = Vec::new();
        let mut markers: BTreeMap<String, u64> = BTreeMap::new();
        for ev in events {
            match ev.kind {
                EventKind::Span { dur_ns } => {
                    if let Some(label) = ev.name.strip_prefix(CELL_SPAN_PREFIX) {
                        cells.entry(label.to_owned()).or_default().0 += dur_ns;
                        continue;
                    }
                    *stage_ns.entry(ev.name.clone()).or_default() += dur_ns;
                    if !ev.cell.is_empty() {
                        *cells
                            .entry(ev.cell.clone())
                            .or_default()
                            .1
                            .entry(ev.name.clone())
                            .or_default() += dur_ns;
                    }
                    if ev.name == "journal-append" {
                        appends.push(dur_ns);
                    }
                }
                EventKind::Instant => *markers.entry(ev.name.clone()).or_default() += 1,
                EventKind::Counter { value } => {
                    if ev.name == "utilization" {
                        utilization.push((ev.lane, value));
                    }
                }
            }
        }
        utilization.sort_by_key(|a| a.0);
        let mut cells: Vec<CellSummary> = cells
            .into_iter()
            .map(|(label, (total_ns, stages))| CellSummary {
                label,
                total_ns,
                stages: stages.into_iter().collect(),
            })
            .collect();
        cells.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.label.cmp(&b.label)));
        TraceSummary {
            stage_ns: stage_ns.into_iter().collect(),
            cells,
            journal_append: LatencyStats::from_durations(appends),
            utilization,
            markers: markers.into_iter().collect(),
            events: events.len(),
            dropped,
        }
    }

    /// Summed nanoseconds of stage `name` across the run.
    pub fn stage_total_ns(&self, name: &str) -> u64 {
        self.stage_ns
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, ns)| *ns)
    }

    /// Count of instant marker `name` across the run.
    pub fn marker_count(&self, name: &str) -> u64 {
        self.markers
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, c)| *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, cell: &str, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_owned(),
            cell: cell.to_owned(),
            lane: 0,
            id: 0,
            parent: 0,
            ts_ns: ts,
            kind: EventKind::Span { dur_ns: dur },
            args: Vec::new(),
        }
    }

    #[test]
    fn event_roundtrips_through_json() {
        let mut e = ev("execute", "FIMI", 123, 456);
        e.id = 7;
        e.parent = 3;
        e.args.push(("attempt".to_owned(), JsonValue::U64(1)));
        assert_eq!(TraceEvent::from_json(&e.to_json()), Some(e.clone()));
        let i = TraceEvent {
            kind: EventKind::Instant,
            id: 0,
            ..e.clone()
        };
        assert_eq!(TraceEvent::from_json(&i.to_json()), Some(i));
        let c = TraceEvent {
            kind: EventKind::Counter { value: 0.5 },
            id: 0,
            args: Vec::new(),
            ..e
        };
        assert_eq!(TraceEvent::from_json(&c.to_json()), Some(c));
    }

    #[test]
    fn lanes_allocate_distinct_span_ids() {
        let rec = FlightRecorder::new();
        let a = rec.lane("worker-0");
        let b = rec.lane("worker-1");
        let s1 = a.begin("x", "c", 0);
        let s2 = b.begin("y", "c", s1.span_id());
        assert_ne!(s1.span_id(), s2.span_id());
        s2.end();
        s1.end();
        let events = rec.drain_sorted();
        assert_eq!(events.len(), 2);
        let y = events.iter().find(|e| e.name == "y").unwrap();
        let x = events.iter().find(|e| e.name == "x").unwrap();
        assert_eq!(y.parent, x.id);
        assert_eq!(
            rec.lane_names(),
            [(0, "worker-0".into()), (1, "worker-1".into())]
        );
    }

    #[test]
    fn overflow_drops_new_events_and_counts_them() {
        let rec = FlightRecorder::with_capacity(3);
        let lane = rec.lane("w");
        for i in 0..10 {
            lane.instant(&format!("m{i}"), "", 0, Vec::new());
        }
        assert_eq!(rec.dropped(), 7);
        let events = rec.drain_sorted();
        assert_eq!(events.len(), 3);
        // Oldest events survive: the buffer keeps its causal prefix.
        assert_eq!(events[0].name, "m0");
    }

    #[test]
    fn context_free_calls_are_noops_without_install() {
        let _s = span("ignored");
        instant("ignored", Vec::new());
        counter("ignored", 1.0);
        assert!(!active());
    }

    #[test]
    fn installed_context_parents_nested_spans() {
        let rec = FlightRecorder::new();
        let lane = rec.lane("w");
        let root = rec.next_span_id();
        {
            let _g = install(lane, "FIMI", root);
            assert!(active());
            let outer = span("cosim");
            {
                let _inner = span("simulate");
                instant("tick", Vec::new());
            }
            drop(outer);
        }
        assert!(!active());
        let events = rec.drain_sorted();
        let outer = events.iter().find(|e| e.name == "cosim").unwrap();
        let inner = events.iter().find(|e| e.name == "simulate").unwrap();
        let tick = events.iter().find(|e| e.name == "tick").unwrap();
        assert_eq!(outer.parent, root);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(tick.parent, inner.id);
        assert!(events.iter().all(|e| e.cell == "FIMI"));
    }

    #[test]
    fn graft_rebases_and_reparents_child_events() {
        // "Child" recorder with its own id space.
        let child = FlightRecorder::new();
        let clane = child.lane("child");
        let root = clane.begin("child-root", "", 0);
        let root_id = root.span_id();
        clane.instant("marker", "", root_id, Vec::new());
        root.end();
        let child_events = child.drain_sorted();
        let payload = events_to_json(&child_events, 2);

        // Parent recorder: graft under an existing cell span.
        let parent = FlightRecorder::new();
        let lane = parent.lane("worker-0");
        let cell = lane.begin(&format!("{CELL_SPAN_PREFIX}FIMI"), "FIMI", 0);
        let cell_id = cell.span_id();
        let (events, dropped) = events_from_json(&payload).unwrap();
        assert_eq!(dropped, 2);
        graft(
            &lane,
            events,
            "FIMI",
            cell_id,
            1_000_000,
            &[("proc", JsonValue::from("child"))],
        );
        cell.end();
        let all = parent.drain_sorted();
        let groot = all.iter().find(|e| e.name == "child-root").unwrap();
        let gmark = all.iter().find(|e| e.name == "marker").unwrap();
        assert_eq!(groot.parent, cell_id, "child root parents under the cell");
        assert_eq!(gmark.parent, groot.id, "intra-child edges survive remap");
        assert!(groot.ts_ns >= 1_000_000);
        assert_eq!(groot.cell, "FIMI");
        assert!(groot
            .args
            .contains(&("proc".to_owned(), JsonValue::from("child"))));
    }

    #[test]
    fn jsonl_roundtrips_events_and_dropped_count() {
        let dir = std::env::temp_dir().join(format!("cmpsim-tracejsonl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("run.trace.jsonl");
        let events = vec![ev("execute", "FIMI", 10, 20), ev("replay", "SHOT", 5, 7)];
        let meta = vec![("experiment".to_owned(), JsonValue::from("fig4_scmp"))];
        let lanes = vec![(0u32, "pool".to_owned()), (1, "worker-0".to_owned())];
        write_jsonl(&path, &meta, &lanes, &events, 3).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back.events, events);
        assert_eq!(back.dropped, 3);
        assert_eq!(back.lanes, lanes);
        assert_eq!(
            back.meta.get("experiment").and_then(JsonValue::as_str),
            Some("fig4_scmp")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_rolls_up_stages_cells_and_latency() {
        let mut events = vec![
            ev("cell:FIMI", "FIMI", 0, 100),
            ev("execute", "FIMI", 1, 60),
            ev("replay", "FIMI", 2, 30),
            ev("cell:SHOT", "SHOT", 0, 300),
            ev("execute", "SHOT", 1, 250),
            ev("journal-append", "FIMI", 3, 10),
            ev("journal-append", "SHOT", 4, 30),
        ];
        events.push(TraceEvent {
            kind: EventKind::Instant,
            ..ev("retry", "SHOT", 5, 0)
        });
        events.push(TraceEvent {
            kind: EventKind::Counter { value: 0.75 },
            lane: 2,
            ..ev("utilization", "", 6, 0)
        });
        let s = TraceSummary::from_events(&events, 1);
        assert_eq!(s.stage_total_ns("execute"), 310);
        assert_eq!(s.stage_total_ns("replay"), 30);
        assert_eq!(s.cells[0].label, "SHOT", "slowest cell first");
        assert_eq!(s.cells[0].total_ns, 300);
        assert_eq!(s.cells[1].stage_ns("execute"), 60);
        assert_eq!(s.journal_append.count, 2);
        assert_eq!(s.journal_append.max_ns, 30);
        assert_eq!(s.marker_count("retry"), 1);
        assert_eq!(s.utilization, [(2, 0.75)]);
        assert_eq!(s.dropped, 1);
    }
}
