//! Chrome trace-event JSON export: renders a [`FlightRecorder`]'s
//! events as a document loadable in Perfetto (<https://ui.perfetto.dev>)
//! or `about://tracing`, so one grid run reads as one timeline.
//!
//! The format is the Trace Event Format's JSON-object flavor:
//! `traceEvents` holds `"X"` complete-duration events (spans), `"i"`
//! instants, `"C"` counters, and `"M"` metadata records naming each
//! lane as a thread. Timestamps and durations are microseconds.
//! Run-level metadata — including the mandatory dropped-event count —
//! rides in `otherData`.
//!
//! [`FlightRecorder`]: crate::trace::FlightRecorder

use crate::trace::{EventKind, TraceEvent};
use crate::value::JsonValue;

/// The process id stamped on every event (the trace models one run).
const PID: u64 = 1;

fn us(ns: u64) -> JsonValue {
    JsonValue::F64(ns as f64 / 1000.0)
}

fn base_fields(name: &str, ph: &str, lane: u32, ts_ns: u64) -> Vec<(String, JsonValue)> {
    vec![
        ("name".to_owned(), JsonValue::from(name)),
        ("cat".to_owned(), JsonValue::from("cmpsim")),
        ("ph".to_owned(), JsonValue::from(ph)),
        ("pid".to_owned(), JsonValue::U64(PID)),
        ("tid".to_owned(), JsonValue::U64(u64::from(lane))),
        ("ts".to_owned(), us(ts_ns)),
    ]
}

fn event_to_chrome(ev: &TraceEvent) -> JsonValue {
    let ph = match ev.kind {
        EventKind::Span { .. } => "X",
        EventKind::Instant => "i",
        EventKind::Counter { .. } => "C",
    };
    let mut fields = base_fields(&ev.name, ph, ev.lane, ev.ts_ns);
    let mut args: Vec<(String, JsonValue)> = Vec::new();
    match ev.kind {
        EventKind::Span { dur_ns } => {
            fields.push(("dur".to_owned(), us(dur_ns)));
            args.push(("span".to_owned(), JsonValue::U64(ev.id)));
            args.push(("parent".to_owned(), JsonValue::U64(ev.parent)));
        }
        EventKind::Instant => {
            // Thread-scoped instant (a tick mark on the lane).
            fields.push(("s".to_owned(), JsonValue::from("t")));
            if ev.parent != 0 {
                args.push(("parent".to_owned(), JsonValue::U64(ev.parent)));
            }
        }
        EventKind::Counter { value } => args.push(("value".to_owned(), JsonValue::F64(value))),
    }
    if !ev.cell.is_empty() {
        args.push(("cell".to_owned(), JsonValue::from(ev.cell.as_str())));
    }
    for (k, v) in &ev.args {
        args.push((k.clone(), v.clone()));
    }
    fields.push(("args".to_owned(), JsonValue::Object(args)));
    JsonValue::Object(fields)
}

fn lane_metadata(id: u32, name: &str) -> [JsonValue; 2] {
    let meta = |what: &str, args: Vec<(String, JsonValue)>| {
        let mut fields = base_fields(what, "M", id, 0);
        fields.push(("args".to_owned(), JsonValue::Object(args)));
        JsonValue::Object(fields)
    };
    [
        meta(
            "thread_name",
            vec![("name".to_owned(), JsonValue::from(name))],
        ),
        meta(
            "thread_sort_index",
            vec![("sort_index".to_owned(), JsonValue::U64(u64::from(id)))],
        ),
    ]
}

/// Renders events (as drained from a recorder or read back from the
/// JSONL sidecar) as one Chrome trace-event document. `meta` entries
/// land in `otherData` alongside the mandatory `dropped_events` count.
pub fn chrome_trace(
    events: &[TraceEvent],
    lanes: &[(u32, String)],
    meta: &[(String, JsonValue)],
    dropped: u64,
) -> JsonValue {
    let mut trace_events: Vec<JsonValue> = Vec::with_capacity(events.len() + 2 * lanes.len());
    for (id, name) in lanes {
        trace_events.extend(lane_metadata(*id, name));
    }
    trace_events.extend(events.iter().map(event_to_chrome));
    let mut other: Vec<(String, JsonValue)> = meta.to_vec();
    other.push(("dropped_events".to_owned(), JsonValue::U64(dropped)));
    JsonValue::object([
        ("traceEvents", JsonValue::Array(trace_events)),
        ("displayTimeUnit", JsonValue::from("ms")),
        ("otherData", JsonValue::Object(other)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FlightRecorder;
    use crate::value::parse;

    fn names(doc: &JsonValue) -> Vec<String> {
        doc.get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap()
            .iter()
            .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn spans_and_lanes_render_as_chrome_events() {
        let rec = FlightRecorder::new();
        let lane = rec.lane("worker-0");
        let mut s = lane.begin("execute", "FIMI", 3);
        s.arg("attempt", 1u64);
        let id = s.span_id();
        s.end();
        lane.counter("queue_depth", "", 4.0);
        let doc = chrome_trace(
            &rec.drain_sorted(),
            &rec.lane_names(),
            &[("experiment".to_owned(), JsonValue::from("fig4"))],
            0,
        );
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        // Lane metadata + two payload events.
        assert_eq!(events.len(), 4);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("name").unwrap().as_str(), Some("execute"));
        assert_eq!(span.get_path(&["args", "span"]).unwrap().as_u64(), Some(id));
        assert_eq!(
            span.get_path(&["args", "parent"]).unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(
            span.get_path(&["args", "cell"]).unwrap().as_str(),
            Some("FIMI")
        );
        assert_eq!(
            span.get_path(&["args", "attempt"]).unwrap().as_u64(),
            Some(1)
        );
        let counter = events
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("C"))
            .unwrap();
        assert_eq!(
            counter.get_path(&["args", "value"]).unwrap().as_f64(),
            Some(4.0)
        );
        assert!(names(&doc).contains(&"thread_name".to_owned()));
        assert_eq!(
            doc.get_path(&["otherData", "experiment"]).unwrap().as_str(),
            Some("fig4")
        );
        // The whole document survives a serialize/parse cycle.
        assert_eq!(parse(&doc.to_json()).unwrap(), doc);
    }

    #[test]
    fn hostile_span_names_survive_json_escaping() {
        // Quotes, backslashes, and control characters in names and cell
        // labels must round-trip through the serializer (satellite:
        // escaping coverage for the Chrome exporter).
        let hostile = "q\"uote\\back\nnew\tline\u{1}ctrl";
        let rec = FlightRecorder::new();
        let lane = rec.lane(hostile);
        lane.begin(hostile, hostile, 0).end();
        let doc = chrome_trace(
            &rec.drain_sorted(),
            &rec.lane_names(),
            &[("path".to_owned(), JsonValue::from(hostile))],
            0,
        );
        let text = doc.to_json();
        let back = parse(&text).expect("escaped document parses");
        assert_eq!(back, doc);
        assert!(
            names(&back).contains(&hostile.to_owned()),
            "hostile name lost in round-trip"
        );
        assert_eq!(
            back.get_path(&["otherData", "path"]).unwrap().as_str(),
            Some(hostile)
        );
    }

    #[test]
    fn dropped_events_are_exported_never_silent() {
        let rec = FlightRecorder::with_capacity(2);
        let lane = rec.lane("w");
        for _ in 0..5 {
            lane.begin("s", "", 0).end();
        }
        assert_eq!(rec.dropped(), 3);
        let doc = chrome_trace(&rec.drain_sorted(), &rec.lane_names(), &[], rec.dropped());
        assert_eq!(
            doc.get_path(&["otherData", "dropped_events"])
                .unwrap()
                .as_u64(),
            Some(3)
        );
    }
}
