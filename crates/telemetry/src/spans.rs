//! Wall-clock self-profiling: named spans around pipeline stages.
//!
//! METICULOUS-style emulators publish where *their own* time goes
//! alongside the emulated counters; these spans do the same for the
//! simulate/emulate/report stages of a run.

use crate::value::JsonValue;
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (e.g. `simulate`, `report`).
    pub name: String,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u128,
    /// Nesting depth at the time the span ran (0 = top level).
    pub depth: usize,
}

impl SpanRecord {
    /// Duration in milliseconds.
    pub fn millis(&self) -> f64 {
        self.nanos as f64 / 1e6
    }
}

/// Collects named wall-clock spans; spans may nest.
#[derive(Debug, Default)]
pub struct SpanProfiler {
    finished: Vec<SpanRecord>,
    open: Vec<(String, Instant)>,
}

impl SpanProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        SpanProfiler::default()
    }

    /// Times a closure under `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        self.start(name);
        let out = f();
        self.end();
        out
    }

    /// Opens a span; pair with [`end`](SpanProfiler::end).
    pub fn start(&mut self, name: &str) {
        self.open.push((name.to_owned(), Instant::now()));
    }

    /// Closes the innermost open span. No-op when nothing is open.
    pub fn end(&mut self) {
        if let Some((name, at)) = self.open.pop() {
            self.finished.push(SpanRecord {
                name,
                nanos: at.elapsed().as_nanos(),
                depth: self.open.len(),
            });
        }
    }

    /// Appends an already-measured span — one timed elsewhere (e.g. on
    /// a worker thread of the experiment runner) and replayed here —
    /// without touching this profiler's open-span stack.
    pub fn record(&mut self, name: &str, nanos: u128, depth: usize) {
        self.finished.push(SpanRecord {
            name: name.to_owned(),
            nanos,
            depth,
        });
    }

    /// All finished spans, in completion order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.finished
    }

    /// Total nanoseconds across every finished span with this name.
    pub fn total_nanos(&self, name: &str) -> u128 {
        self.finished
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.nanos)
            .sum()
    }

    /// Exports finished spans as a JSON array.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Array(
            self.finished
                .iter()
                .map(|s| {
                    JsonValue::object([
                        ("name", JsonValue::Str(s.name.clone())),
                        ("wall_ms", JsonValue::F64(s.millis())),
                        ("depth", JsonValue::U64(s.depth as u64)),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_a_span() {
        let mut p = SpanProfiler::new();
        let v = p.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(p.spans().len(), 1);
        assert_eq!(p.spans()[0].name, "work");
        assert_eq!(p.spans()[0].depth, 0);
    }

    #[test]
    fn nesting_tracks_depth() {
        let mut p = SpanProfiler::new();
        p.start("outer");
        p.time("inner", || ());
        p.end();
        let inner = p.spans().iter().find(|s| s.name == "inner").unwrap();
        let outer = p.spans().iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.depth, 0);
        assert!(outer.nanos >= inner.nanos);
    }

    #[test]
    fn unbalanced_end_is_harmless() {
        let mut p = SpanProfiler::new();
        p.end();
        assert!(p.spans().is_empty());
    }

    #[test]
    fn record_appends_external_span() {
        let mut p = SpanProfiler::new();
        p.start("outer");
        p.record("replayed", 1_500_000, 1);
        p.end();
        let replayed = p.spans().iter().find(|s| s.name == "replayed").unwrap();
        assert_eq!(replayed.nanos, 1_500_000);
        assert_eq!(replayed.depth, 1);
        assert!((replayed.millis() - 1.5).abs() < 1e-9);
        // The open stack was untouched: "outer" still closed normally.
        assert!(p.spans().iter().any(|s| s.name == "outer"));
    }

    #[test]
    fn totals_sum_repeated_names() {
        let mut p = SpanProfiler::new();
        p.time("stage", || ());
        p.time("stage", || ());
        assert_eq!(p.spans().len(), 2);
        assert!(p.total_nanos("stage") >= p.spans()[0].nanos);
    }
}
