//! Run manifests: the provenance record emitted next to every result.
//!
//! A result file without the configuration that produced it cannot be
//! reproduced; the manifest captures the experiment name, workloads,
//! scale, seed, full configuration, package version, and wall time in a
//! machine-readable form.

use crate::value::JsonValue;

/// The JSON schema version written into every document; bump when the
/// document layout changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// Scrubs an absolute host path for inclusion in a manifest or trace:
/// relative paths pass through unchanged; an absolute path under the
/// current working directory becomes the relative remainder; any other
/// absolute path is reduced to its basename. Keeps artifacts diffable
/// across machines — a run on `/home/a` and one on `/home/b` emit the
/// same provenance bytes.
pub fn scrub_path(path: &str) -> String {
    use std::path::Path;
    if !Path::new(path).is_absolute() {
        return path.to_owned();
    }
    if let Ok(cwd) = std::env::current_dir() {
        if let Ok(rel) = Path::new(path).strip_prefix(&cwd) {
            let rel = rel.to_string_lossy();
            return if rel.is_empty() {
                ".".to_owned()
            } else {
                rel.into_owned()
            };
        }
    }
    Path::new(path)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_owned())
}

/// Provenance for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Producing tool (binary or study name, e.g. `cmpsim` or
    /// `fig4_scmp`).
    pub experiment: String,
    /// Cargo package version of the producer.
    pub version: String,
    /// Workloads the run covered (paper names, e.g. `FIMI`).
    pub workloads: Vec<String>,
    /// Scale knob, rendered (`1/16`, `paper`, ...).
    pub scale: String,
    /// Dataset seed.
    pub seed: u64,
    /// Full configuration, as ordered key/value entries.
    pub config: Vec<(String, JsonValue)>,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: f64,
}

impl RunManifest {
    /// Starts a manifest for `experiment` at `version`
    /// (pass `env!("CARGO_PKG_VERSION")`).
    pub fn new(experiment: &str, version: &str) -> Self {
        RunManifest {
            experiment: experiment.to_owned(),
            version: version.to_owned(),
            workloads: Vec::new(),
            scale: String::new(),
            seed: 0,
            config: Vec::new(),
            wall_ms: 0.0,
        }
    }

    /// Sets the workload list.
    pub fn with_workloads<S: ToString, I: IntoIterator<Item = S>>(mut self, ws: I) -> Self {
        self.workloads = ws.into_iter().map(|w| w.to_string()).collect();
        self
    }

    /// Sets scale and seed.
    pub fn with_scale_seed(mut self, scale: impl ToString, seed: u64) -> Self {
        self.scale = scale.to_string();
        self.seed = seed;
        self
    }

    /// Appends one configuration entry.
    pub fn config_entry(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.config.push((key.to_owned(), value.into()));
        self
    }

    /// Reads back a configuration entry.
    pub fn config_value(&self, key: &str) -> Option<&JsonValue> {
        self.config.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Exports as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("schema_version", JsonValue::U64(u64::from(SCHEMA_VERSION))),
            ("experiment", JsonValue::Str(self.experiment.clone())),
            ("version", JsonValue::Str(self.version.clone())),
            (
                "workloads",
                JsonValue::Array(
                    self.workloads
                        .iter()
                        .map(|w| JsonValue::Str(w.clone()))
                        .collect(),
                ),
            ),
            ("scale", JsonValue::Str(self.scale.clone())),
            ("seed", JsonValue::U64(self.seed)),
            (
                "config",
                JsonValue::Object(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                ),
            ),
            ("wall_ms", JsonValue::F64(self.wall_ms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrips_config() {
        let m = RunManifest::new("fig4_scmp", "0.1.0")
            .with_workloads(["FIMI", "MDS"])
            .with_scale_seed("1/16", 2007)
            .config_entry("cores", 8u64)
            .config_entry("llc_bytes", 1u64 << 21);
        let j = m.to_json();
        assert_eq!(j.get("experiment").unwrap().as_str(), Some("fig4_scmp"));
        assert_eq!(j.get("seed").unwrap().as_u64(), Some(2007));
        assert_eq!(j.get_path(&["config", "cores"]).unwrap().as_u64(), Some(8));
        assert_eq!(j.get("workloads").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(m.config_value("llc_bytes").unwrap().as_u64(), Some(1 << 21));
        let parsed = crate::value::parse(&j.to_json_pretty()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn scrub_path_keeps_relative_and_reduces_absolute() {
        assert_eq!(scrub_path("results/journal"), "results/journal");
        assert_eq!(scrub_path("./traces"), "./traces");
        let cwd = std::env::current_dir().unwrap();
        let inside = cwd.join("results/run.json");
        assert_eq!(scrub_path(inside.to_str().unwrap()), "results/run.json");
        assert_eq!(scrub_path(cwd.to_str().unwrap()), ".");
        // Outside the working directory: basename only — no host
        // identity leaks into the artifact.
        let scrubbed = scrub_path("/definitely/not/under/cwd/store.bin");
        assert_eq!(scrubbed, "store.bin");
    }

    #[test]
    fn schema_version_is_stamped() {
        let j = RunManifest::new("x", "0.1.0").to_json();
        assert_eq!(
            j.get("schema_version").unwrap().as_u64(),
            Some(u64::from(SCHEMA_VERSION))
        );
    }
}
