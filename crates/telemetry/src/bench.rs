//! A small wall-clock benchmark harness (the in-tree replacement for an
//! external benchmarking framework — the container this repo builds in
//! has no network access, so the harness lives here, built on the same
//! span machinery the simulator uses for self-profiling).

use std::time::Instant;

/// One benchmark's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Measured iterations.
    pub iters: u32,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest iteration in nanoseconds.
    pub min_ns: u128,
    /// Optional throughput denominator (elements per iteration).
    pub elements: Option<u64>,
}

impl BenchResult {
    /// Elements per second, when a throughput denominator was set.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements
            .map(|e| e as f64 / (self.mean_ns / 1e9))
            .filter(|v| v.is_finite())
    }
}

/// Runs benchmarks and prints a criterion-style one-line summary each.
#[derive(Debug, Default)]
pub struct BenchHarness {
    results: Vec<BenchResult>,
    filter: Option<String>,
}

impl BenchHarness {
    /// A harness honoring a substring filter from the command line
    /// (`cargo bench -- <filter>`), mirroring the usual convention.
    pub fn from_args() -> Self {
        // Cargo passes `--bench`; ignore flags, keep the first free arg.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        BenchHarness {
            results: Vec::new(),
            filter,
        }
    }

    /// Times `f` over `iters` iterations (after one warm-up) and records
    /// the result. `elements` is an optional per-iteration throughput
    /// denominator.
    pub fn run(&mut self, name: &str, iters: u32, elements: Option<u64>, mut f: impl FnMut()) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        f(); // warm-up
        let mut min_ns = u128::MAX;
        let mut total_ns = 0u128;
        let iters = iters.max(1);
        for _ in 0..iters {
            let t = Instant::now();
            f();
            let ns = t.elapsed().as_nanos();
            min_ns = min_ns.min(ns);
            total_ns += ns;
        }
        let r = BenchResult {
            name: name.to_owned(),
            iters,
            mean_ns: total_ns as f64 / f64::from(iters),
            min_ns,
            elements,
        };
        match r.elements_per_sec() {
            Some(eps) => println!(
                "{:<40} {:>12.0} ns/iter  {:>12.0} elem/s",
                r.name, r.mean_ns, eps
            ),
            None => println!("{:<40} {:>12.0} ns/iter", r.name, r.mean_ns),
        }
        self.results.push(r);
    }

    /// All recorded results.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_records_results() {
        let mut h = BenchHarness::default();
        let mut x = 0u64;
        h.run("noop", 3, Some(10), || x = x.wrapping_add(1));
        assert_eq!(h.results().len(), 1);
        let r = &h.results()[0];
        assert_eq!(r.iters, 3);
        assert!(r.mean_ns >= r.min_ns as f64);
        assert!(r.elements_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = BenchHarness {
            filter: Some("cache".to_owned()),
            ..BenchHarness::default()
        };
        h.run("workload_trace", 1, None, || ());
        h.run("cache_access", 1, None, || ());
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].name, "cache_access");
    }
}
