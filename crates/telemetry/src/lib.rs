#![warn(missing_docs)]

//! Telemetry for the co-simulation stack: structured counters, phase
//! timelines, wall-clock spans, run manifests, and JSON/CSV export —
//! with **zero external dependencies**.
//!
//! The paper's methodology *is* observability: Dragonhead's collection
//! board reports counters to the host every 500 µs and attributes every
//! bus transaction to the virtual core that issued it. This crate is the
//! software home for that data once it reaches the host:
//!
//! * [`MetricRegistry`] — labeled counter/gauge/histogram series
//!   (`core`, `bank`, `workload`, ... labels),
//! * [`Timeline`] — per-interval derived metrics (interval MPKI, miss
//!   ratio, bus utilization) from cumulative snapshots,
//! * [`SpanProfiler`] — wall-clock spans around the simulate/emulate/
//!   report stages,
//! * [`RunManifest`] — provenance (config, scale, seed, version, wall
//!   time) emitted next to every result,
//! * [`JsonValue`] — a small JSON document model with serializer *and*
//!   parser, plus CSV exporters on each component,
//! * [`trace`] — the flight recorder: per-worker event lanes, causal
//!   spans, and a Chrome-trace-event exporter ([`chrome`]) for
//!   Perfetto timelines of whole grid runs,
//! * [`TelemetryReport`] — the bundle of all of the above as one
//!   document.
//!
//! # Example
//!
//! ```
//! use cmpsim_telemetry::{Labels, MetricRegistry, RunManifest, TelemetryReport};
//!
//! let mut report = TelemetryReport::new(RunManifest::new("demo", env!("CARGO_PKG_VERSION")));
//! report
//!     .metrics
//!     .count("llc_misses", &Labels::none().with("core", "0"), 17);
//! report.timeline.push_cumulative(50_000, 120_000, 900, 17);
//! let doc = report.to_json();
//! assert!(doc.get("manifest").is_some());
//! assert_eq!(doc.get("metrics").unwrap().as_array().unwrap().len(), 1);
//! ```

pub mod bench;
pub mod chrome;
pub mod manifest;
pub mod registry;
pub mod spans;
pub mod timeline;
pub mod trace;
pub mod value;

pub use bench::{BenchHarness, BenchResult};
pub use chrome::chrome_trace;
pub use manifest::{scrub_path, RunManifest, SCHEMA_VERSION};
pub use registry::{Histogram, Labels, Metric, MetricRegistry, MetricValue};
pub use spans::{SpanProfiler, SpanRecord};
pub use timeline::{IntervalRecord, Timeline};
pub use trace::{FlightRecorder, Lane, TraceEvent, TraceSummary};
pub use value::{parse, JsonParseError, JsonValue};

use std::io::Write as _;
use std::path::Path;

/// Everything one run exports: manifest + metrics + timeline + spans.
#[derive(Debug)]
pub struct TelemetryReport {
    /// Run provenance.
    pub manifest: RunManifest,
    /// Counter/gauge/histogram series.
    pub metrics: MetricRegistry,
    /// Per-interval sampler series.
    pub timeline: Timeline,
    /// Self-profiling spans.
    pub spans: SpanProfiler,
}

impl TelemetryReport {
    /// An empty report around a manifest.
    pub fn new(manifest: RunManifest) -> Self {
        TelemetryReport {
            manifest,
            metrics: MetricRegistry::new(),
            timeline: Timeline::new(),
            spans: SpanProfiler::new(),
        }
    }

    /// The full document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("manifest", self.manifest.to_json()),
            ("metrics", self.metrics.to_json()),
            ("intervals", self.timeline.to_json()),
            ("spans", self.spans.to_json()),
        ])
    }

    /// Writes the pretty-printed document to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        write_json_file(path, &self.to_json())
    }
}

/// Writes any JSON document to `path` (pretty-printed, trailing
/// newline), creating parent directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json_file(path: &Path, doc: &JsonValue) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(doc.to_json_pretty().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_document_shape() {
        let mut r =
            TelemetryReport::new(RunManifest::new("t", "0.0.0").with_scale_seed("1/256", 1));
        r.metrics.count("x", &Labels::none(), 1);
        r.spans.time("stage", || ());
        let doc = r.to_json();
        for key in ["manifest", "metrics", "intervals", "spans"] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        // The serialized document parses back to itself.
        assert_eq!(value::parse(&doc.to_json()).unwrap(), doc);
    }

    #[test]
    fn write_json_creates_directories() {
        let dir = std::env::temp_dir().join("cmpsim_telemetry_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.json");
        write_json_file(&path, &JsonValue::object([("ok", JsonValue::Bool(true))])).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            value::parse(&text).unwrap().get("ok"),
            Some(&JsonValue::Bool(true))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
