//! The metric registry: labeled counters, gauges, and histograms.
//!
//! Modeled on the counter infrastructure the paper's collection board
//! exposes to the host — every counter is identified by a name plus a
//! small set of labels (`core`, `bank`, `workload`, ...), so the same
//! logical metric can be recorded per core and per bank without
//! inventing new names.

use crate::value::JsonValue;
use std::fmt::Write as _;

/// A sorted label set (`key=value` pairs). Sorting makes series identity
/// independent of insertion order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    /// The empty label set.
    pub fn none() -> Self {
        Labels::default()
    }

    /// Builds from `(key, value)` pairs.
    pub fn from_pairs<K: Into<String>, V: Into<String>, I: IntoIterator<Item = (K, V)>>(
        pairs: I,
    ) -> Self {
        let mut v: Vec<(String, String)> = pairs
            .into_iter()
            .map(|(k, val)| (k.into(), val.into()))
            .collect();
        v.sort();
        Labels(v)
    }

    /// Adds one label, keeping the set sorted.
    pub fn with<K: Into<String>, V: Into<String>>(mut self, key: K, value: V) -> Self {
        self.0.push((key.into(), value.into()));
        self.0.sort();
        self
    }

    /// The pairs, sorted by key.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.0
    }

    /// Renders as `k1=v1,k2=v2` (the CSV label column).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}={v}");
        }
        out
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.0
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
                .collect(),
        )
    }
}

/// A power-of-two-bucket histogram (bucket `i` counts values in
/// `[2^(i-1), 2^i)`, bucket 0 counts zeros and ones).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        let bucket = if value <= 1 {
            0
        } else {
            (64 - (value - 1).leading_zeros()) as usize
        };
        if bucket >= self.buckets.len() {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        self.max = self.max.max(value);
        self.count += 1;
        self.sum += value;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Bucket counts (bucket `i` holds values in `[2^(i-1), 2^i)`).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    fn to_json(&self) -> JsonValue {
        // An empty histogram has no mean: serialize `null` (the PR 5
        // stalled-interval convention) rather than a fabricated 0, so
        // downstream consumers can tell "no observations" from "all
        // observations were 0".
        let mean = if self.count == 0 {
            JsonValue::Null
        } else {
            JsonValue::F64(self.mean())
        };
        JsonValue::object([
            ("count", JsonValue::U64(self.count)),
            ("sum", JsonValue::U64(self.sum)),
            ("min", JsonValue::U64(self.min)),
            ("max", JsonValue::U64(self.max)),
            ("mean", mean),
            (
                "pow2_buckets",
                JsonValue::Array(self.buckets.iter().map(|&b| JsonValue::U64(b)).collect()),
            ),
        ])
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Point-in-time measurement.
    Gauge(f64),
    /// Distribution of observations.
    Histogram(Histogram),
}

impl MetricValue {
    /// The metric type name used in exports.
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One named, labeled series.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (snake_case).
    pub name: String,
    /// Label set identifying the series.
    pub labels: Labels,
    /// Current value.
    pub value: MetricValue,
}

/// The registry: the set of all series recorded by a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricRegistry {
    metrics: Vec<Metric>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// All series, in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether no series have been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    fn series(&mut self, name: &str, labels: &Labels, default: MetricValue) -> &mut MetricValue {
        if let Some(i) = self
            .metrics
            .iter()
            .position(|m| m.name == name && &m.labels == labels)
        {
            return &mut self.metrics[i].value;
        }
        self.metrics.push(Metric {
            name: name.to_owned(),
            labels: labels.clone(),
            value: default,
        });
        &mut self.metrics.last_mut().expect("just pushed").value
    }

    /// Adds to a counter series (created at zero on first touch).
    ///
    /// # Panics
    ///
    /// Panics if the series exists with a different type.
    pub fn count(&mut self, name: &str, labels: &Labels, delta: u64) {
        match self.series(name, labels, MetricValue::Counter(0)) {
            MetricValue::Counter(v) => *v += delta,
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Sets a gauge series.
    ///
    /// # Panics
    ///
    /// Panics if the series exists with a different type.
    pub fn gauge(&mut self, name: &str, labels: &Labels, value: f64) {
        match self.series(name, labels, MetricValue::Gauge(0.0)) {
            MetricValue::Gauge(v) => *v = value,
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Records one observation into a histogram series.
    ///
    /// # Panics
    ///
    /// Panics if the series exists with a different type.
    pub fn observe(&mut self, name: &str, labels: &Labels, value: u64) {
        match self.series(name, labels, MetricValue::Histogram(Histogram::default())) {
            MetricValue::Histogram(h) => h.observe(value),
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Reads back a counter (0 when absent).
    pub fn counter_value(&self, name: &str, labels: &Labels) -> u64 {
        self.metrics
            .iter()
            .find(|m| m.name == name && &m.labels == labels)
            .and_then(|m| match m.value {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Sums a counter across every label combination.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .map(|m| match m.value {
                MetricValue::Counter(v) => v,
                _ => 0,
            })
            .sum()
    }

    /// Exports every series as a JSON array.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Array(
            self.metrics
                .iter()
                .map(|m| {
                    let value = match &m.value {
                        MetricValue::Counter(v) => JsonValue::U64(*v),
                        MetricValue::Gauge(v) => JsonValue::F64(*v),
                        MetricValue::Histogram(h) => h.to_json(),
                    };
                    JsonValue::object([
                        ("name", JsonValue::Str(m.name.clone())),
                        ("type", JsonValue::from(m.value.kind())),
                        ("labels", m.labels.to_json()),
                        ("value", value),
                    ])
                })
                .collect(),
        )
    }

    /// Exports every series as CSV (`name,type,labels,value` — histograms
    /// export their mean, with count/min/max in extra columns).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,type,labels,value,count,min,max\n");
        for m in &self.metrics {
            let (value, count, min, max) = match &m.value {
                MetricValue::Counter(v) => {
                    (format!("{v}"), String::new(), String::new(), String::new())
                }
                MetricValue::Gauge(v) => {
                    (format!("{v}"), String::new(), String::new(), String::new())
                }
                MetricValue::Histogram(h) => (
                    format!("{}", h.mean()),
                    format!("{}", h.count()),
                    format!("{}", h.min()),
                    format!("{}", h.max()),
                ),
            };
            let _ = writeln!(
                out,
                "{},{},\"{}\",{value},{count},{min},{max}",
                m.name,
                m.value.kind(),
                m.labels.render(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut r = MetricRegistry::new();
        let core0 = Labels::none().with("core", "0");
        let core1 = Labels::none().with("core", "1");
        r.count("llc_misses", &core0, 3);
        r.count("llc_misses", &core1, 5);
        r.count("llc_misses", &core0, 2);
        assert_eq!(r.counter_value("llc_misses", &core0), 5);
        assert_eq!(r.counter_value("llc_misses", &core1), 5);
        assert_eq!(r.counter_total("llc_misses"), 10);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn label_order_does_not_matter() {
        let a = Labels::from_pairs([("bank", "2"), ("core", "0")]);
        let b = Labels::none().with("core", "0").with("bank", "2");
        assert_eq!(a, b);
        assert_eq!(a.render(), "bank=2,core=0");
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = MetricRegistry::new();
        r.gauge("mpki", &Labels::none(), 4.0);
        r.gauge("mpki", &Labels::none(), 2.5);
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.to_json().as_array().unwrap()[0].get("value"),
            Some(&JsonValue::F64(2.5))
        );
    }

    #[test]
    fn histogram_buckets_are_pow2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        // 0,1 -> bucket 0; 2 -> bucket 1; 3,4 -> bucket 2; 1000 -> bucket 10.
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[10], 1);
    }

    #[test]
    fn empty_histogram_serializes_mean_as_null() {
        // Round-trip through the serializer: an empty histogram's mean
        // must come back as JSON null, not 0 (and never a bare NaN
        // token, which no parser would accept).
        let h = Histogram::default();
        let text = h.to_json().to_json();
        let doc = crate::value::parse(&text).expect("serializer output must reparse");
        assert_eq!(doc.get("mean"), Some(&JsonValue::Null), "{text}");
        assert_eq!(doc.get("count"), Some(&JsonValue::U64(0)));
        // One observation restores the numeric mean.
        let mut h = Histogram::default();
        h.observe(6);
        let text = h.to_json().to_json();
        let doc = crate::value::parse(&text).expect("serializer output must reparse");
        assert_eq!(doc.get("mean"), Some(&JsonValue::F64(6.0)), "{text}");
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_confusion_panics() {
        let mut r = MetricRegistry::new();
        r.count("x", &Labels::none(), 1);
        r.gauge("x", &Labels::none(), 1.0);
    }

    #[test]
    fn csv_export_shape() {
        let mut r = MetricRegistry::new();
        r.count("bus_transactions", &Labels::none().with("core", "3"), 7);
        r.observe("slice_len", &Labels::none(), 4);
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,type,labels,value,count,min,max");
        assert_eq!(lines[1], "bus_transactions,counter,\"core=3\",7,,,");
        assert!(lines[2].starts_with("slice_len,histogram,\"\",4,1,4,4"));
    }
}
