//! The phase timeline: per-interval derived metrics from cumulative
//! counter snapshots.
//!
//! The paper's host reads cumulative counters from the collection board
//! every 500 µs; the quantities of interest (interval MPKI, bus
//! utilization, miss ratio) are *differences* between consecutive
//! snapshots. [`Timeline`] does that differencing once, so every exporter
//! and study sees the same derived series.

use crate::value::JsonValue;
use std::fmt::Write as _;

/// One interval of the timeline, with both the raw deltas and the
/// derived rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalRecord {
    /// Interval index (0-based).
    pub index: usize,
    /// First cycle covered by this interval (exclusive of the previous
    /// snapshot's cycle).
    pub start_cycle: u64,
    /// Cycle of the snapshot that closed this interval.
    pub end_cycle: u64,
    /// Instructions retired within the interval.
    pub instructions: u64,
    /// LLC accesses within the interval.
    pub accesses: u64,
    /// LLC misses within the interval.
    pub misses: u64,
    /// Misses per 1000 instructions within the interval.
    pub mpki: f64,
    /// Misses / accesses within the interval.
    pub miss_ratio: f64,
    /// Bus data transactions per cycle within the interval (the
    /// utilization proxy the sampler can compute without a timing model).
    pub bus_utilization: f64,
}

/// Builds interval records from cumulative `(cycle, instructions,
/// accesses, misses)` snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    records: Vec<IntervalRecord>,
    last_cycle: u64,
    last_instructions: u64,
    last_accesses: u64,
    last_misses: u64,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Feeds one cumulative snapshot; records the interval since the
    /// previous snapshot. Snapshots that do not advance the clock are
    /// ignored (they carry no interval).
    pub fn push_cumulative(&mut self, cycle: u64, instructions: u64, accesses: u64, misses: u64) {
        if cycle <= self.last_cycle && !self.records.is_empty() {
            return;
        }
        let di = instructions.saturating_sub(self.last_instructions);
        let da = accesses.saturating_sub(self.last_accesses);
        let dm = misses.saturating_sub(self.last_misses);
        let dc = cycle.saturating_sub(self.last_cycle);
        self.records.push(IntervalRecord {
            index: self.records.len(),
            start_cycle: self.last_cycle,
            end_cycle: cycle,
            instructions: di,
            accesses: da,
            misses: dm,
            mpki: if di == 0 {
                // Misses with no instructions retired is a memory-stalled
                // interval: the rate is undefined, not zero. A truly idle
                // interval (no misses either) stays at 0.0. NaN serializes
                // as JSON `null` and CSV `NaN`.
                if dm == 0 {
                    0.0
                } else {
                    f64::NAN
                }
            } else {
                dm as f64 * 1000.0 / di as f64
            },
            miss_ratio: if da == 0 { 0.0 } else { dm as f64 / da as f64 },
            bus_utilization: if dc == 0 { 0.0 } else { da as f64 / dc as f64 },
        });
        self.last_cycle = cycle;
        self.last_instructions = instructions;
        self.last_accesses = accesses;
        self.last_misses = misses;
    }

    /// The recorded intervals.
    pub fn records(&self) -> &[IntervalRecord] {
        &self.records
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no intervals have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Exports as a JSON array of interval objects.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.records.iter().map(interval_json).collect())
    }

    /// Exports as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "index,start_cycle,end_cycle,instructions,accesses,misses,mpki,miss_ratio,bus_utilization\n",
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{}",
                r.index,
                r.start_cycle,
                r.end_cycle,
                r.instructions,
                r.accesses,
                r.misses,
                r.mpki,
                r.miss_ratio,
                r.bus_utilization
            );
        }
        out
    }
}

fn interval_json(r: &IntervalRecord) -> JsonValue {
    JsonValue::object([
        ("index", JsonValue::U64(r.index as u64)),
        ("start_cycle", JsonValue::U64(r.start_cycle)),
        ("end_cycle", JsonValue::U64(r.end_cycle)),
        ("instructions", JsonValue::U64(r.instructions)),
        ("accesses", JsonValue::U64(r.accesses)),
        ("misses", JsonValue::U64(r.misses)),
        ("mpki", JsonValue::F64(r.mpki)),
        ("miss_ratio", JsonValue::F64(r.miss_ratio)),
        ("bus_utilization", JsonValue::F64(r.bus_utilization)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differencing_produces_interval_rates() {
        let mut t = Timeline::new();
        t.push_cumulative(100, 1000, 10, 2);
        t.push_cumulative(200, 3000, 30, 8);
        assert_eq!(t.len(), 2);
        let r = t.records()[1];
        assert_eq!(r.instructions, 2000);
        assert_eq!(r.misses, 6);
        assert!((r.mpki - 3.0).abs() < 1e-12);
        assert!((r.miss_ratio - 0.3).abs() < 1e-12);
        assert!((r.bus_utilization - 0.2).abs() < 1e-12);
    }

    #[test]
    fn stalled_clock_is_ignored() {
        let mut t = Timeline::new();
        t.push_cumulative(100, 10, 1, 0);
        t.push_cumulative(100, 10, 1, 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn zero_denominators_yield_zero_rates() {
        let mut t = Timeline::new();
        t.push_cumulative(50, 0, 0, 0);
        let r = t.records()[0];
        assert_eq!(r.mpki, 0.0);
        assert_eq!(r.miss_ratio, 0.0);
        assert!(r.bus_utilization == 0.0);
    }

    #[test]
    fn memory_stalled_interval_is_nan_not_zero() {
        let mut t = Timeline::new();
        t.push_cumulative(100, 1000, 10, 2);
        // 50 more misses while not a single instruction retires: the
        // interval is memory-stalled, and 0.0 would read as "no misses".
        t.push_cumulative(200, 1000, 60, 52);
        let r = t.records()[1];
        assert_eq!(r.misses, 50);
        assert!(r.mpki.is_nan(), "mpki {}", r.mpki);
        // The undefined rate must survive both export formats.
        assert!(t.to_json().to_json().contains("null"));
        assert!(t.to_csv().lines().nth(2).unwrap().contains("NaN"));
    }

    #[test]
    fn csv_has_one_line_per_interval_plus_header() {
        let mut t = Timeline::new();
        t.push_cumulative(10, 100, 5, 1);
        t.push_cumulative(20, 200, 9, 2);
        assert_eq!(t.to_csv().lines().count(), 3);
    }
}
