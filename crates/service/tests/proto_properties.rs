//! Property tests for the wire codec: torn, truncated, and bit-flipped
//! frames must surface as clean protocol errors — never a panic, and
//! never a silently different message.
//!
//! Same spirit as the chaos harness in `tests/chaos.rs`: a
//! deterministic PCG32 drives the corruption, so every failure
//! reproduces from its seed.

use cmpsim_service::proto::{self, Attach, MsgReader};
use cmpsim_telemetry::JsonValue;
use cmpsim_trace::Pcg32;

const ROUNDS: u64 = 300;

/// A random but valid protocol-shaped message.
fn random_msg(rng: &mut Pcg32) -> JsonValue {
    let mut fields = vec![(
        "kind".to_owned(),
        JsonValue::from(match rng.next_u32() % 6 {
            0 => "dispatch",
            1 => "cell_result",
            2 => "heartbeat",
            3 => "attach",
            4 => "attached",
            _ => "job_done",
        }),
    )];
    for i in 0..(rng.next_u32() % 6) {
        let value = match rng.next_u32() % 4 {
            0 => JsonValue::U64(rng.next_u64()),
            1 => JsonValue::Bool(rng.next_u32().is_multiple_of(2)),
            2 => JsonValue::from(random_text(rng)),
            _ => JsonValue::Array(
                (0..rng.next_u32() % 4)
                    .map(|_| JsonValue::U64(rng.next_u64()))
                    .collect(),
            ),
        };
        fields.push((format!("f{i}"), value));
    }
    JsonValue::Object(fields)
}

/// Random text exercising escapes, separators, and multi-byte UTF-8.
fn random_text(rng: &mut Pcg32) -> String {
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '\n', '\t', '{', '}', ':', ',', 'µ', '→', '☃',
    ];
    (0..rng.next_u32() % 12)
        .map(|_| ALPHABET[rng.next_u32() as usize % ALPHABET.len()])
        .collect()
}

/// Frames `msgs` exactly as `write_msg` would.
fn frame(msgs: &[JsonValue]) -> Vec<u8> {
    let mut wire = Vec::new();
    for msg in msgs {
        proto::write_msg(&mut wire, msg).expect("Vec write cannot fail");
    }
    wire
}

/// Reads the stream to its end: the messages recovered before the
/// first error, and whether an error stopped the read.
fn drain(wire: &[u8]) -> (Vec<JsonValue>, Option<std::io::Error>) {
    let mut reader = MsgReader::new(wire);
    let mut out = Vec::new();
    loop {
        match reader.next() {
            Ok(Some(msg)) => out.push(msg),
            Ok(None) => return (out, None),
            Err(e) => return (out, Some(e)),
        }
    }
}

#[test]
fn intact_frames_round_trip() {
    let mut rng = Pcg32::seed(0xC0DEC);
    for round in 0..ROUNDS {
        let msgs: Vec<JsonValue> = (0..1 + rng.next_u32() % 5)
            .map(|_| random_msg(&mut rng))
            .collect();
        let (read, err) = drain(&frame(&msgs));
        assert!(
            err.is_none(),
            "round {round}: clean stream errored: {err:?}"
        );
        let want: Vec<String> = msgs.iter().map(JsonValue::to_json).collect();
        let got: Vec<String> = read.iter().map(JsonValue::to_json).collect();
        assert_eq!(got, want, "round {round}: clean stream was altered");
    }
}

#[test]
fn truncated_streams_error_cleanly_never_panic() {
    let mut rng = Pcg32::seed(0x7A0B5);
    for round in 0..ROUNDS {
        let msgs: Vec<JsonValue> = (0..1 + rng.next_u32() % 4)
            .map(|_| random_msg(&mut rng))
            .collect();
        let wire = frame(&msgs);
        let cut = rng.next_u64() as usize % wire.len();
        let (read, err) = drain(&wire[..cut]);
        // Whole frames before the cut survive verbatim; the torn tail
        // is either absent (cut on a boundary) or a clean error.
        assert!(read.len() <= msgs.len(), "round {round}: invented messages");
        for (got, want) in read.iter().zip(&msgs) {
            assert_eq!(
                got.to_json(),
                want.to_json(),
                "round {round}: truncation altered an earlier frame"
            );
        }
        if read.len() < msgs.len() && err.is_none() {
            // A clean EOF is only legitimate when the cut removed
            // trailing frames exactly at a newline boundary.
            assert_eq!(
                cut,
                frame(&msgs[..read.len()]).len(),
                "round {round}: mid-frame truncation passed silently (cut at {cut})"
            );
        }
        if let Some(e) = err {
            assert_eq!(
                e.kind(),
                std::io::ErrorKind::InvalidData,
                "round {round}: torn frame surfaced as {e:?}, not a protocol error"
            );
        }
    }
}

#[test]
fn bit_flips_are_rejected_never_misread() {
    let mut rng = Pcg32::seed(0xB17F11);
    for round in 0..ROUNDS {
        let msgs: Vec<JsonValue> = (0..1 + rng.next_u32() % 4)
            .map(|_| random_msg(&mut rng))
            .collect();
        let mut wire = frame(&msgs);
        let pos = rng.next_u64() as usize % wire.len();
        let bit = 1u8 << (rng.next_u32() % 8);
        wire[pos] ^= bit;
        let (read, err) = drain(&wire);
        // The checksum makes a silently *different* message impossible:
        // every recovered message is byte-identical to an original, in
        // order, and a recovery shortfall is always an explicit error.
        assert!(read.len() <= msgs.len(), "round {round}: invented messages");
        for (got, want) in read.iter().zip(&msgs) {
            assert_eq!(
                got.to_json(),
                want.to_json(),
                "round {round}: bit flip at {pos} produced a different message"
            );
        }
        if read.len() < msgs.len() {
            let e = err.unwrap_or_else(|| {
                panic!("round {round}: flip at {pos} lost a frame with no error")
            });
            assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "round {round}");
        }
    }
}

#[test]
fn corrupted_attach_frames_never_yield_a_different_watermark() {
    // The `attach` watermark decides which records the coordinator
    // replays: a bit flip must never surface as a *different* valid
    // attach — that would silently skip (or duplicate) results.
    let mut rng = Pcg32::seed(0xA77AC4);
    for round in 0..ROUNDS {
        let attach = Attach {
            run_id: random_text(&mut rng),
            after_seq: rng.next_u64(),
        };
        let mut wire = frame(&[attach.to_msg()]);
        let pos = rng.next_u64() as usize % wire.len();
        wire[pos] ^= 1u8 << (rng.next_u32() % 8);
        let (read, err) = drain(&wire);
        match read.first().and_then(Attach::from_msg) {
            Some(got) => assert!(
                got.run_id == attach.run_id && got.after_seq == attach.after_seq,
                "round {round}: flip at {pos} produced a different attach \
                 ({} after {} vs {} after {})",
                got.run_id,
                got.after_seq,
                attach.run_id,
                attach.after_seq
            ),
            None => assert!(
                read.is_empty() && err.is_some(),
                "round {round}: flip at {pos} lost the attach without an error"
            ),
        }
    }
}

#[test]
fn spliced_and_garbage_frames_error_cleanly() {
    let mut rng = Pcg32::seed(0x5711CE);
    for _ in 0..ROUNDS {
        let a = frame(&[random_msg(&mut rng)]);
        let b = frame(&[random_msg(&mut rng)]);
        // A torn write: the head of one frame, the tail of another.
        let mut wire = a[..rng.next_u64() as usize % a.len()].to_vec();
        wire.extend_from_slice(&b[b.len() - (rng.next_u64() as usize % b.len())..]);
        wire.push(b'\n');
        // Plus some outright garbage lines, including invalid UTF-8.
        for _ in 0..rng.next_u32() % 3 {
            wire.extend((0..rng.next_u32() % 24).map(|_| rng.next_u32() as u8));
            wire.push(b'\n');
        }
        let mut reader = MsgReader::new(wire.as_slice());
        for _ in 0..=wire.len() {
            match reader.next() {
                Ok(Some(_)) | Err(_) => {} // both are acceptable; no panic is the property
                Ok(None) => break,
            }
        }
    }
}
