//! The coordinator daemon: accept loop, fair scheduler, worker fleet,
//! and the lease table for remote agents.
//!
//! One [`Coordinator`] owns a TCP listener, a fleet of local worker
//! threads (each supervising one child process at a time via
//! [`cmpsim_runner::run_program`]), the shared content-addressed
//! result cache, and a per-run write-ahead journal + flight recorder.
//! Remote [`agents`](crate::agent) dial in over the same listener,
//! register over a versioned handshake (protocol version + binary
//! fingerprint + slot count), and pull cells alongside the local
//! workers.
//!
//! **Scheduling** is round-robin across runs: the queue holds
//! `(run, pending cells)` entries; a worker (or agent feeder) pops the
//! front run, takes *one* due cell, and pushes the run to the back.
//! Concurrent sweeps therefore interleave cell-by-cell — a two-cell
//! status probe is never starved behind a 64-cell paper-scale sweep.
//!
//! **Dedup** is two-layered. A cell whose key is already in the shared
//! result cache streams back as `cached` without executing. A cell
//! whose key is currently *executing* for another run joins that
//! execution as a waiter: when the owner finishes, waiters receive the
//! payload as `cached` (or the failure verbatim), so overlapping
//! concurrent submissions execute each distinct cell exactly once.
//!
//! **Leases**: every cell dispatched to an agent carries a lease.
//! Agents renew their leases by heartbeat; an agent that disconnects
//! or goes silent past the lease TTL (3× the heartbeat interval) is
//! *reclaimed* — its in-flight cells re-enter the queue as crash-class
//! retries, bounded by the same [`BackoffPolicy`] budget as local
//! crashes, so a cell that kills every agent is quarantined as
//! `poisoned`, not retried forever. The lease table is the single
//! finishing authority: a dead agent's last-gasp result and a
//! reclaimed re-run race on removing the lease, exactly one wins, and
//! the journal gets exactly one `job_done` per cell.
//!
//! **Failure model**: a worker child that crashes (SIGKILL, abort,
//! OOM) is retried on the run's [`BackoffPolicy`] schedule and
//! quarantined as `poisoned` when the budget runs out — the cell
//! re-shards transparently; the client just sees one `job_done`. A
//! client that disconnects mid-sweep stops receiving records, but the
//! run finishes and journals server-side, so `--resume` (or `attach`)
//! replays it.
//!
//! **Restart recovery**: a coordinator that dies mid-sweep leaves each
//! run's write-ahead journal behind. On the next `cmpsim serve`
//! startup, [`recover_runs`] scans the journal directory and rebuilds
//! every unfinished run from its journalled `submission` record:
//! completed cells are tallied from their `job_done` records, dangling
//! in-flight and never-started cells re-enter the scheduler under the
//! ordinary backoff/poison budget, and the run executes to completion
//! with no client action. Every `job_done` carries a per-run monotone
//! record sequence (`rseq`, minted by the journal under the run's emit
//! lock so journal order == wire order); a client that lost its
//! coordinator reattaches with `attach {run_id, after_seq}` and the
//! coordinator replays the records it missed straight from the journal
//! before splicing it into the live stream. The listener binds with
//! `SO_REUSEADDR`, so the restarted daemon can take the same address
//! while the old incarnation's sockets drain in `TIME_WAIT`.
//!
//! **Degradation**: if journal appends start failing (disk full, dir
//! deleted), the run keeps executing but is marked *degraded* — it
//! finishes, warns, bumps `runs_degraded`, and its journal file is
//! removed so a later boot will not recover from a lying journal;
//! reattach and `--resume` are refused for it.
//!
//! Every socket carries read/write deadlines, so a hung or half-open
//! peer can never wedge the accept loop, a worker, or an agent session
//! indefinitely.

use crate::proto::{self, AgentHello, Attach, CellSpec, Dispatch, Submission, PROTOCOL_VERSION};
use cmpsim_runner::{
    file_fingerprint, fresh_run_id, process_nonce, record, run_program, run_program_sabotaged,
    BackoffPolicy, ChildAttempt, FailureClass, JobKey, JobOutcome, JournalConfig, ResultCache,
    RunJournal, ShutdownFlag,
};
use cmpsim_telemetry::trace::{self as ftrace, FlightRecorder, Lane};
use cmpsim_telemetry::JsonValue;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

/// Write deadline on every coordinator-side socket: a peer that cannot
/// absorb a message within this is treated as gone.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Read deadline while waiting for a connection's first request.
const HANDSHAKE_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A lease outlives this many missed heartbeats before reclaim.
const LEASE_TTL_BEATS: u32 = 3;

fn lease_ttl(cfg: &ServeConfig) -> Duration {
    cfg.heartbeat * LEASE_TTL_BEATS
}

/// How the daemon runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port `0` picks a free port (see
    /// [`Coordinator::local_addr`]).
    pub listen: String,
    /// Local worker threads — each supervises one child process at a
    /// time. Zero is valid: an agents-only coordinator schedules but
    /// never executes.
    pub workers: usize,
    /// Root of the shared content-addressed result cache; `None`
    /// disables caching (dedup of *in-flight* work still applies).
    pub cache_dir: Option<PathBuf>,
    /// Directory for per-run journals and trace sidecars.
    pub journal_dir: PathBuf,
    /// Extra attempts for a crashed/hung cell.
    pub retries: u32,
    /// Per-cell watchdog deadline; the child is killed at it.
    pub job_timeout: Option<Duration>,
    /// Retry/backoff schedule for failed attempts.
    pub backoff: BackoffPolicy,
    /// Chaos hook: SIGKILL the first child spawned for a cell with
    /// this label (once per daemon lifetime), so tests and CI exercise
    /// the genuine crash/re-shard path.
    pub chaos_kill_label: Option<String>,
    /// Chaos hook: abort the *whole daemon* the first time a cell with
    /// this label is claimed — after its `job_start` is journalled, so
    /// the restart-recovery path sees a genuine mid-sweep coordinator
    /// loss (tests and the CI kill-and-restart smoke).
    pub chaos_crash_label: Option<String>,
    /// Heartbeat interval agents must beat at; a lease is reclaimed
    /// after [`LEASE_TTL_BEATS`] silent intervals.
    pub heartbeat: Duration,
    /// Graceful-shutdown flag; when set, the accept loop stops and
    /// workers drain.
    pub shutdown: Option<ShutdownFlag>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_owned(),
            workers: 2,
            cache_dir: None,
            journal_dir: PathBuf::from("results/journal"),
            retries: 1,
            job_timeout: None,
            backoff: BackoffPolicy::default(),
            chaos_kill_label: None,
            chaos_crash_label: None,
            heartbeat: Duration::from_secs(2),
            shutdown: None,
        }
    }
}

/// Lifetime counters, exported over `status` and into the service
/// trace lane.
#[derive(Debug, Default)]
struct Counters {
    submissions: AtomicU64,
    runs_completed: AtomicU64,
    cells_total: AtomicU64,
    executed: AtomicU64,
    cache_hits: AtomicU64,
    dedup_joins: AtomicU64,
    replayed: AtomicU64,
    crashes: AtomicU64,
    agents_joined: AtomicU64,
    agents_lost: AtomicU64,
    cells_reclaimed: AtomicU64,
    stale_results: AtomicU64,
    runs_recovered: AtomicU64,
    cells_requeued: AtomicU64,
    jobs_replayed_to_client: AtomicU64,
    runs_degraded: AtomicU64,
}

impl Counters {
    fn snapshot(&self, workers: usize) -> JsonValue {
        let get = |a: &AtomicU64| JsonValue::U64(a.load(Ordering::Relaxed));
        JsonValue::object([
            ("kind", JsonValue::from("counters")),
            ("workers", JsonValue::from(workers)),
            ("submissions", get(&self.submissions)),
            ("runs_completed", get(&self.runs_completed)),
            ("cells_total", get(&self.cells_total)),
            ("executed", get(&self.executed)),
            ("cache_hits", get(&self.cache_hits)),
            ("dedup_joins", get(&self.dedup_joins)),
            ("replayed", get(&self.replayed)),
            ("crashes", get(&self.crashes)),
            ("agents_joined", get(&self.agents_joined)),
            ("agents_lost", get(&self.agents_lost)),
            ("cells_reclaimed", get(&self.cells_reclaimed)),
            ("stale_results", get(&self.stale_results)),
            ("runs_recovered", get(&self.runs_recovered)),
            ("cells_requeued", get(&self.cells_requeued)),
            (
                "jobs_replayed_to_client",
                get(&self.jobs_replayed_to_client),
            ),
            ("runs_degraded", get(&self.runs_degraded)),
        ])
    }
}

/// One accepted submission, shared between the scheduler and workers.
struct Run {
    id: String,
    experiment: String,
    exe: PathBuf,
    cells: Vec<CellSpec>,
    journal: RunJournal,
    /// Serializes journal-append + client-send for `job_done` records,
    /// so rseq order, journal order, and wire order always agree —
    /// `attach` relies on "everything after rseq N" being exact. Also
    /// the gate an attach takes to splice into the stream without
    /// missing or duplicating a record.
    emit: Mutex<()>,
    /// The client's write side; `None` once the client is gone (the
    /// run still completes — `attach`/`--resume` replays it).
    client: Mutex<Option<TcpStream>>,
    /// Pending (non-replayed) cells left; the run ends at zero.
    remaining: AtomicUsize,
    ok: AtomicUsize,
    cached: AtomicUsize,
    failed: AtomicUsize,
    recorder: Arc<FlightRecorder>,
    service_lane: Lane,
    worker_lanes: Vec<Lane>,
    trace_path: PathBuf,
    workers: usize,
}

impl Run {
    fn tally(&self, outcome: &JobOutcome) {
        match outcome {
            JobOutcome::Ok(_) => &self.ok,
            JobOutcome::Cached(_) => &self.cached,
            _ => &self.failed,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Streams one message to the client; a failed write marks the
    /// client gone and the computation carries on.
    fn send(&self, body: &JsonValue) {
        let mut client = self.client.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stream) = client.as_mut() {
            if proto::write_msg(stream, body).is_err() {
                *client = None;
            }
        }
    }

    fn send_job_done(
        &self,
        cell: &CellSpec,
        outcome: &JobOutcome,
        attempts: u32,
        rseq: u64,
        replayed: bool,
    ) {
        let mut fields = vec![
            ("kind".to_owned(), JsonValue::from("job_done")),
            ("rseq".to_owned(), JsonValue::from(rseq)),
            ("seq".to_owned(), JsonValue::from(cell.seq)),
            ("key".to_owned(), JsonValue::from(cell.key.as_str())),
            ("label".to_owned(), JsonValue::from(cell.label.as_str())),
            ("attempts".to_owned(), JsonValue::from(u64::from(attempts))),
            ("outcome".to_owned(), outcome.to_json()),
        ];
        if replayed {
            fields.push(("replayed".to_owned(), JsonValue::Bool(true)));
        }
        self.send(&JsonValue::Object(fields));
    }
}

/// One pending cell in the fair rotation.
struct Pending {
    seq: usize,
    /// Attempts already consumed (0 for a fresh cell); the next
    /// dispatch is attempt `attempt + 1`.
    attempt: u32,
    /// An owned cell already holds the in-flight slot and has
    /// journalled its `job_start` — it re-entered the queue through a
    /// reclaim or retry, so claiming is skipped.
    owned: bool,
    /// Backoff gate: not schedulable before this instant.
    not_before: Option<Instant>,
}

impl Pending {
    fn fresh(seq: usize) -> Pending {
        Pending {
            seq,
            attempt: 0,
            owned: false,
            not_before: None,
        }
    }

    fn due(&self, now: Instant) -> bool {
        self.not_before.is_none_or(|t| t <= now)
    }
}

/// One connected remote agent.
struct Agent {
    id: u64,
    pid: u32,
    slots: usize,
    /// Slots not currently holding a lease.
    free: AtomicUsize,
    /// Cells whose results this agent delivered.
    done: AtomicU64,
    /// Set exactly once, by whichever path declares the agent dead
    /// (or drained) first.
    gone: AtomicBool,
    /// Monotonic ([`Instant`], never wall clock): an NTP step or a
    /// suspend/resume must not make a healthy agent look silent.
    last_beat: Mutex<Instant>,
    /// The canonical write path — dispatches and heartbeat acks are
    /// serialized through it.
    writer: Mutex<TcpStream>,
}

/// One dispatched cell awaiting its agent's result.
struct Lease {
    run: Arc<Run>,
    seq: usize,
    /// Attempts consumed *before* this dispatch.
    attempt: u32,
    agent: u64,
    /// TTL deadline on the monotonic clock ([`Instant`], never wall
    /// clock), so an NTP step or suspend/resume cannot mass-expire the
    /// fleet's leases.
    expires: Instant,
}

/// State shared by the accept loop, the worker fleet, and agent
/// sessions.
struct Shared {
    cfg: ServeConfig,
    cache: Option<ResultCache>,
    sched: Mutex<Sched>,
    work: Condvar,
    counters: Counters,
    chaos_armed: AtomicBool,
    /// Arms the daemon-abort chaos hook ([`ServeConfig::chaos_crash_label`])
    /// separately from the child-SIGKILL one.
    chaos_crash_armed: AtomicBool,
    /// Connected agents by id.
    agents: Mutex<HashMap<u64, Arc<Agent>>>,
    /// Outstanding leases by lease id — the single finishing
    /// authority for agent-dispatched cells.
    leases: Mutex<HashMap<u64, Lease>>,
    next_agent_id: AtomicU64,
    /// Seeded from [`process_nonce`] at bind, so lease ids from a
    /// previous daemon incarnation (re-reported by a reconnecting agent
    /// after a restart) can never collide with live ones — they fall
    /// through to the `stale_results` path instead.
    next_lease_id: AtomicU64,
    /// Live runs, for the keepalive pinger.
    runs: Mutex<Vec<Weak<Run>>>,
    /// FNV-1a fingerprint of this coordinator's own executable; agent
    /// handshakes must match it (`None` if the binary could not be
    /// hashed — the check is then skipped).
    binary: Option<String>,
}

#[derive(Default)]
struct Sched {
    /// Fair rotation: a worker pops the front run, takes one cell,
    /// pushes the run back.
    queue: VecDeque<(Arc<Run>, VecDeque<Pending>)>,
    /// Canonical key → waiters joining the in-flight execution.
    inflight: HashMap<String, Vec<(Arc<Run>, usize)>>,
    draining: bool,
}

/// What a scheduler poll produced.
enum Popped {
    /// A due cell, plus the queue depth left behind (for the trace
    /// counter).
    Cell(Arc<Run>, Pending, usize),
    /// Only backoff-gated cells exist; the soonest is due in this long.
    Wait(Duration),
    /// Queue empty and the daemon is draining.
    Drained,
    /// Queue empty; wait for work.
    Empty,
}

/// Pops one due cell from the fair rotation, preserving round-robin
/// order across runs.
fn try_pop(sched: &mut Sched, now: Instant) -> Popped {
    let rounds = sched.queue.len();
    let mut soonest: Option<Instant> = None;
    for _ in 0..rounds {
        let (run, mut cells) = sched.queue.pop_front().expect("queue length checked");
        if let Some(pos) = cells.iter().position(|p| p.due(now)) {
            let pending = cells.remove(pos).expect("position from iter");
            let depth: usize =
                cells.len() + sched.queue.iter().map(|(_, c)| c.len()).sum::<usize>();
            if !cells.is_empty() {
                sched.queue.push_back((Arc::clone(&run), cells));
            }
            return Popped::Cell(run, pending, depth);
        }
        let run_soonest = cells.iter().filter_map(|p| p.not_before).min();
        soonest = match (soonest, run_soonest) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        sched.queue.push_back((run, cells));
    }
    if let Some(t) = soonest {
        return Popped::Wait(
            t.saturating_duration_since(now)
                .max(Duration::from_millis(1)),
        );
    }
    if sched.draining {
        Popped::Drained
    } else {
        Popped::Empty
    }
}

/// Re-enqueues one cell (appending to the run's existing queue entry
/// if it still has one) and wakes the fleet.
fn enqueue(shared: &Shared, run: &Arc<Run>, pending: Pending) {
    let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
    match sched.queue.iter_mut().find(|(r, _)| Arc::ptr_eq(r, run)) {
        Some((_, cells)) => cells.push_back(pending),
        None => sched
            .queue
            .push_back((Arc::clone(run), VecDeque::from([pending]))),
    }
    drop(sched);
    shared.work.notify_all();
}

/// Binds a listener with `SO_REUSEADDR`, so a restarted daemon can
/// re-bind its port while its predecessor's accepted connections are
/// still draining through `TIME_WAIT` — without it, the restart that
/// recovery exists for would fail with "address in use" for minutes.
///
/// `std::net::TcpListener` offers no socket-option hook before `bind`,
/// so on Linux this goes through raw libc calls (the same
/// zero-dependency FFI idiom as the shutdown handler); IPv6 addresses
/// and other platforms fall back to the plain bind.
fn bind_reuseaddr(addr: &str) -> std::io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    {
        use std::net::ToSocketAddrs;
        if let Some(SocketAddr::V4(v4)) = addr.to_socket_addrs()?.find(SocketAddr::is_ipv4) {
            return bind_reuseaddr_v4(&v4);
        }
    }
    TcpListener::bind(addr)
}

#[cfg(target_os = "linux")]
fn bind_reuseaddr_v4(addr: &std::net::SocketAddrV4) -> std::io::Result<TcpListener> {
    use std::os::fd::FromRawFd;

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0x8_0000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        /// Network byte order.
        sin_port: u16,
        /// Network byte order.
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    // SAFETY: plain libc calls with checked return values; the fd is
    // either handed to `TcpListener::from_raw_fd` (which then owns it)
    // or closed on the error path.
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let on: i32 = 1;
        let sa = SockaddrIn {
            sin_family: AF_INET as u16,
            sin_port: addr.port().to_be(),
            sin_addr: u32::from(*addr.ip()).to_be(),
            sin_zero: [0; 8],
        };
        if setsockopt(
            fd,
            SOL_SOCKET,
            SO_REUSEADDR,
            &on,
            std::mem::size_of::<i32>() as u32,
        ) < 0
            || bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) < 0
            || listen(fd, 128) < 0
        {
            let err = std::io::Error::last_os_error();
            let _ = close(fd);
            return Err(err);
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

/// The daemon: bind, then [`run`](Coordinator::run) until shut down.
pub struct Coordinator {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Binds the listen socket (port `0` picks a free port), then scans
    /// the journal directory and rebuilds every run a previous daemon
    /// incarnation left unfinished — completed cells tallied from their
    /// journal, dangling in-flight ones re-enqueued — so a restarted
    /// `cmpsim serve` resumes scheduling without any client action.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, permission).
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Coordinator> {
        let listener = bind_reuseaddr(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let cache = cfg.cache_dir.clone().map(ResultCache::new);
        let binary = std::env::current_exe()
            .ok()
            .and_then(|p| file_fingerprint(&p).ok());
        let shared = Arc::new(Shared {
            cfg,
            cache,
            sched: Mutex::new(Sched::default()),
            work: Condvar::new(),
            counters: Counters::default(),
            chaos_armed: AtomicBool::new(true),
            chaos_crash_armed: AtomicBool::new(true),
            agents: Mutex::new(HashMap::new()),
            leases: Mutex::new(HashMap::new()),
            next_agent_id: AtomicU64::new(0),
            next_lease_id: AtomicU64::new(process_nonce() << 16),
            runs: Mutex::new(Vec::new()),
            binary,
        });
        recover_runs(&shared);
        Ok(Coordinator { listener, shared })
    }

    /// The bound address — what clients `--connect` to.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures (never expected post-bind).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until the shutdown flag fires (or forever without one):
    /// accepts connections, spawns a handler thread per client, and
    /// runs the worker fleet plus the lease reaper. Returns after a
    /// graceful drain.
    pub fn run(&self) {
        std::thread::scope(|s| {
            for wid in 0..self.shared.cfg.workers {
                let shared = Arc::clone(&self.shared);
                s.spawn(move || worker_loop(&shared, wid));
            }
            {
                let shared = Arc::clone(&self.shared);
                s.spawn(move || reaper_loop(&shared));
            }
            loop {
                if self
                    .shared
                    .cfg
                    .shutdown
                    .as_ref()
                    .is_some_and(ShutdownFlag::requested)
                {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let shared = Arc::clone(&self.shared);
                        s.spawn(move || handle_conn(&shared, stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    Err(e) => {
                        eprintln!("cmpsim serve: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
            let mut sched = self.shared.sched.lock().unwrap_or_else(|e| e.into_inner());
            sched.draining = true;
            drop(sched);
            self.shared.work.notify_all();
        });
    }
}

/// One client connection: read the request line, dispatch.
fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_read_timeout(Some(HANDSHAKE_READ_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = proto::MsgReader::new(read_half);
    let mut write_half = stream;
    let msg = match reader.next() {
        Ok(Some(msg)) => msg,
        Ok(None) => return,
        Err(e) => {
            send_error(&mut write_half, &format!("bad request: {e}"));
            return;
        }
    };
    let peer_protocol = msg.get("protocol").and_then(JsonValue::as_u64);
    if peer_protocol != Some(PROTOCOL_VERSION) {
        send_error(
            &mut write_half,
            &format!(
                "protocol mismatch: coordinator speaks v{PROTOCOL_VERSION}, peer sent {}",
                match peer_protocol {
                    Some(v) => format!("v{v}"),
                    None => "no version".to_owned(),
                }
            ),
        );
        return;
    }
    match msg.get("kind").and_then(JsonValue::as_str) {
        Some("status") => {
            let _ = proto::write_msg(&mut write_half, &status_snapshot(shared));
        }
        Some("submit") => match Submission::from_msg(&msg) {
            Some(sub) => {
                if let Err(e) = register_submission(shared, write_half, sub) {
                    eprintln!("cmpsim serve: submission rejected: {e}");
                }
            }
            None => send_error(&mut write_half, "malformed submit message"),
        },
        Some("attach") => match Attach::from_msg(&msg) {
            Some(attach) => handle_attach(shared, write_half, &attach),
            None => send_error(&mut write_half, "malformed attach message"),
        },
        Some("agent_hello") => match AgentHello::from_msg(&msg) {
            Some(hello) => run_agent_session(shared, reader, write_half, hello),
            None => send_error(&mut write_half, "malformed agent_hello message"),
        },
        other => send_error(&mut write_half, &format!("unknown request kind {other:?}")),
    }
}

fn send_error(stream: &mut TcpStream, message: &str) {
    let _ = proto::write_msg(
        stream,
        &JsonValue::object([
            ("kind", JsonValue::from("error")),
            ("message", JsonValue::from(message)),
        ]),
    );
}

/// The `status` reply: lifetime counters plus one row per connected
/// agent.
fn status_snapshot(shared: &Shared) -> JsonValue {
    let mut snap = shared.counters.snapshot(shared.cfg.workers);
    let mut rows: Vec<(u64, JsonValue)> = {
        let agents = shared.agents.lock().unwrap_or_else(|e| e.into_inner());
        agents
            .values()
            .map(|a| {
                let free = a.free.load(Ordering::Relaxed).min(a.slots);
                let beat_ms = a
                    .last_beat
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .elapsed()
                    .as_millis() as u64;
                (
                    a.id,
                    JsonValue::object([
                        ("id", JsonValue::from(a.id)),
                        ("pid", JsonValue::from(u64::from(a.pid))),
                        ("slots", JsonValue::from(a.slots)),
                        ("in_flight", JsonValue::from(a.slots - free)),
                        ("last_heartbeat_ms", JsonValue::from(beat_ms)),
                        (
                            "cells_done",
                            JsonValue::from(a.done.load(Ordering::Relaxed)),
                        ),
                    ]),
                )
            })
            .collect()
    };
    rows.sort_by_key(|(id, _)| *id);
    if let JsonValue::Object(fields) = &mut snap {
        fields.push((
            "agents".to_owned(),
            JsonValue::Array(rows.into_iter().map(|(_, v)| v).collect()),
        ));
    }
    snap
}

/// The journal record capturing a submission verbatim — everything a
/// restarted daemon needs to rebuild the run ([`recover_runs`]).
fn submission_record(run_id: &str, sub: &Submission) -> JsonValue {
    JsonValue::object([
        ("kind", JsonValue::from("submission")),
        ("run_id", JsonValue::from(run_id)),
        (
            "exe",
            JsonValue::from(sub.exe.to_string_lossy().into_owned()),
        ),
        ("experiment", JsonValue::from(sub.experiment.as_str())),
        (
            "cells",
            JsonValue::Array(sub.cells.iter().map(CellSpec::to_json).collect()),
        ),
    ])
}

/// Registers one submission: opens (and on resume, replays) its
/// journal, streams replayed cells, and enqueues the rest.
fn register_submission(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    sub: Submission,
) -> std::io::Result<()> {
    shared.counters.submissions.fetch_add(1, Ordering::Relaxed);
    let run_id = sub
        .run_id
        .clone()
        .unwrap_or_else(|| fresh_run_id(&sub.experiment));
    let mut jc = JournalConfig::new(shared.cfg.journal_dir.clone(), run_id.clone());
    if sub.resume {
        jc = jc.resuming();
    }
    let (journal, replay) = match RunJournal::open(&jc) {
        Ok(opened) => opened,
        Err(e) => {
            send_error(&mut stream, &format!("cannot open journal: {e}"));
            return Err(e);
        }
    };

    // Partition: cells with a journalled terminal outcome replay
    // instantly; the rest execute (in-flight ones from a dead run are
    // the `recovered` count, mirroring the batch pool).
    let mut pending: VecDeque<Pending> = VecDeque::new();
    let mut replayed = Vec::new();
    let mut recovered = 0usize;
    for (i, cell) in sub.cells.iter().enumerate() {
        match replay.completed.get(&cell.key) {
            Some(done) => replayed.push((i, done.clone())),
            None => {
                if replay.in_flight.contains(&cell.key) {
                    recovered += 1;
                }
                pending.push_back(Pending::fresh(i));
            }
        }
    }
    let total = sub.cells.len();
    journal.run_start(&run_id, total, replayed.len());
    // Journal the submission itself (exe, experiment, cell list): the
    // journal then holds everything a *restarted* daemon needs to
    // rebuild and finish this run with no client involved.
    journal.append_record(submission_record(&run_id, &sub));
    shared
        .counters
        .cells_total
        .fetch_add(total as u64, Ordering::Relaxed);

    let workers = shared.cfg.workers;
    proto::write_msg(
        &mut stream,
        &JsonValue::object([
            ("kind", JsonValue::from("accepted")),
            ("run_id", JsonValue::from(run_id.as_str())),
            ("total", JsonValue::from(total)),
            ("workers", JsonValue::from(workers)),
            ("recovered", JsonValue::from(recovered)),
        ]),
    )?;

    let recorder = FlightRecorder::new();
    let service_lane = recorder.lane("service");
    let worker_lanes = (0..workers)
        .map(|i| recorder.lane(&format!("worker-{i}")))
        .collect();
    let trace_path = shared.cfg.journal_dir.join(format!("{run_id}.trace.jsonl"));
    service_lane.instant(
        "submit",
        "",
        0,
        vec![
            ("run_id".to_owned(), JsonValue::from(run_id.as_str())),
            ("cells".to_owned(), JsonValue::from(total)),
            ("replayed".to_owned(), JsonValue::from(replayed.len())),
        ],
    );
    let run = Arc::new(Run {
        id: run_id,
        experiment: sub.experiment,
        exe: sub.exe,
        cells: sub.cells,
        journal,
        emit: Mutex::new(()),
        client: Mutex::new(Some(stream)),
        remaining: AtomicUsize::new(pending.len()),
        ok: AtomicUsize::new(0),
        cached: AtomicUsize::new(0),
        failed: AtomicUsize::new(0),
        recorder,
        service_lane,
        worker_lanes,
        trace_path,
        workers,
    });
    {
        let mut runs = shared.runs.lock().unwrap_or_else(|e| e.into_inner());
        runs.retain(|w| w.strong_count() > 0);
        runs.push(Arc::downgrade(&run));
    }

    // Stream replays in rseq order, so the client's "highest rseq
    // received" watermark is gapless if it has to reattach mid-replay.
    replayed.sort_by_key(|(_, done)| done.rseq);
    for (seq, done) in replayed {
        shared.counters.replayed.fetch_add(1, Ordering::Relaxed);
        run.tally(&done.outcome);
        run.send_job_done(
            &run.cells[seq],
            &done.outcome,
            done.attempts,
            done.rseq,
            true,
        );
    }

    if run.remaining.load(Ordering::Acquire) == 0 {
        finish_run(shared, &run);
    } else {
        let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
        sched.queue.push_back((run, pending));
        drop(sched);
        shared.work.notify_all();
    }
    Ok(())
}

/// One worker thread: pull a cell from the fair rotation, process it,
/// repeat until drained.
fn worker_loop(shared: &Shared, wid: usize) {
    let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        match try_pop(&mut sched, Instant::now()) {
            Popped::Cell(run, pending, depth) => {
                drop(sched);
                run.service_lane.counter("queue_depth", "", depth as f64);
                process_cell(shared, &run, pending, wid);
                sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
            }
            Popped::Wait(d) => {
                sched = shared
                    .work
                    .wait_timeout(sched, d)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
            Popped::Empty => {
                sched = shared.work.wait(sched).unwrap_or_else(|e| e.into_inner());
            }
            Popped::Drained => return,
        }
    }
}

/// How claiming a cell resolved.
enum Claim {
    /// Served from the cache (or otherwise finished) — nothing to run.
    Finished,
    /// Joined another run's in-flight execution as a waiter.
    Joined,
    /// This caller owns the execution.
    Own,
}

/// Claims one fresh cell: journal its start, then cache lookup, then
/// in-flight dedup. Returns [`Claim::Own`] with the in-flight slot
/// held.
fn claim(shared: &Shared, run: &Arc<Run>, seq: usize) -> Claim {
    let cell = &run.cells[seq];
    run.journal.job_start(seq, &cell.key, &cell.label);

    // Chaos hook: die *after* the write-ahead `job_start` — exactly the
    // window a real coordinator loss leaves a dangling in-flight cell
    // for restart recovery to re-enqueue.
    if shared.cfg.chaos_crash_label.as_deref() == Some(cell.label.as_str())
        && shared.chaos_crash_armed.swap(false, Ordering::SeqCst)
    {
        eprintln!(
            "cmpsim serve: chaos hook aborting the daemon on cell {}",
            cell.label
        );
        std::process::abort();
    }

    // Layer 1: the shared result cache (a finished cell from any
    // client, this boot or an earlier one).
    let key = JobKey::from_canonical(&cell.key);
    if let (Some(cache), Some(key)) = (shared.cache.as_ref(), key.as_ref()) {
        if let Some(payload) = cache.lookup(key) {
            shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            finish_cell(shared, run, seq, &JobOutcome::Cached(payload), 0);
            return Claim::Finished;
        }
    }

    // Layer 2: in-flight dedup — join an execution another run owns.
    {
        let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(waiters) = sched.inflight.get_mut(&cell.key) {
            waiters.push((Arc::clone(run), seq));
            shared.counters.dedup_joins.fetch_add(1, Ordering::Relaxed);
            return Claim::Joined;
        }
        sched.inflight.insert(cell.key.clone(), Vec::new());
    }
    shared.counters.executed.fetch_add(1, Ordering::Relaxed);
    Claim::Own
}

/// Completes an owned cell: store the payload, journal + stream the
/// outcome, and resolve any dedup waiters.
fn complete_owned(
    shared: &Shared,
    run: &Arc<Run>,
    seq: usize,
    outcome: &JobOutcome,
    attempts: u32,
) {
    let cell = &run.cells[seq];
    if let JobOutcome::Ok(payload) = outcome {
        if let Some(cache) = shared.cache.as_ref() {
            if let Some(key) = JobKey::from_canonical(&cell.key) {
                if let Err(e) = cache.store(&key, payload) {
                    eprintln!("cmpsim serve: cache store failed: {e}");
                }
            }
        }
    }
    finish_cell(shared, run, seq, outcome, attempts);

    // Resolve waiters: they receive the payload as a cache hit, or the
    // failure verbatim.
    let waiters = {
        let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
        sched.inflight.remove(&cell.key).unwrap_or_default()
    };
    for (wrun, wseq) in waiters {
        let shared_outcome = match outcome.payload() {
            Some(v) => JobOutcome::Cached(v.clone()),
            None => outcome.clone(),
        };
        finish_cell(shared, &wrun, wseq, &shared_outcome, 0);
    }
}

/// A failed attempt either re-enters the queue (backoff-gated, still
/// owned) or completes with the failure when the budget is spent.
fn retry_or_complete(
    shared: &Shared,
    run: &Arc<Run>,
    seq: usize,
    class: FailureClass,
    failure: JobOutcome,
    attempt: u32,
) {
    match shared
        .cfg
        .backoff
        .next_delay(class, attempt, shared.cfg.retries)
    {
        Some(delay) => {
            let not_before = (!delay.is_zero()).then(|| Instant::now() + delay);
            enqueue(
                shared,
                run,
                Pending {
                    seq,
                    attempt,
                    owned: true,
                    not_before,
                },
            );
        }
        None => complete_owned(shared, run, seq, &failure, attempt),
    }
}

/// Processes one cell on a local worker: claim (unless re-owned), then
/// the supervised retry loop.
fn process_cell(shared: &Shared, run: &Arc<Run>, pending: Pending, wid: usize) {
    let seq = pending.seq;
    let cell = &run.cells[seq];
    let lane = &run.worker_lanes[wid];
    let mut span = lane.begin("cell", &cell.label, 0);
    span.arg("run", run.id.as_str());

    if !pending.owned {
        match claim(shared, run, seq) {
            Claim::Finished => {
                span.arg("outcome", "cached");
                return;
            }
            Claim::Joined => {
                span.arg("outcome", "dedup_join");
                return;
            }
            Claim::Own => {}
        }
    }
    let (outcome, attempts) = execute_cell(shared, run, cell, lane, &mut span, pending.attempt + 1);
    span.arg("outcome", outcome.kind());
    complete_owned(shared, run, seq, &outcome, attempts);
}

/// The supervised retry loop for one owned cell. Returns the terminal
/// outcome and the attempts spent.
fn execute_cell(
    shared: &Shared,
    run: &Arc<Run>,
    cell: &CellSpec,
    lane: &Lane,
    span: &mut ftrace::OpenSpan,
    start_attempt: u32,
) -> (JobOutcome, u32) {
    let policy = &shared.cfg.backoff;
    let retries = shared.cfg.retries;
    let mut attempt = start_attempt.max(1);
    loop {
        // The chaos hook fires on the first matching dispatch only:
        // the child is SIGKILLed right after spawn, producing a
        // genuine crash that the retry loop re-shards.
        let sabotage = shared.cfg.chaos_kill_label.as_deref() == Some(cell.label.as_str())
            && shared.chaos_armed.swap(false, Ordering::SeqCst);
        let mut exec = lane.begin("execute", &cell.label, span.span_id());
        exec.arg("attempt", u64::from(attempt));
        let base_ts = run.recorder.now_ns();
        let res = if sabotage {
            run_program_sabotaged(&run.exe, &cell.args, shared.cfg.job_timeout, true)
        } else {
            run_program(&run.exe, &cell.args, shared.cfg.job_timeout, true)
        };
        if !res.trace.is_empty() || res.trace_dropped > 0 {
            run.recorder.add_dropped(res.trace_dropped);
            ftrace::graft(lane, res.trace, &cell.label, exec.span_id(), base_ts, &[]);
        }
        drop(exec);
        let (class, failure) = match res.attempt {
            ChildAttempt::Ok(payload) => return (JobOutcome::Ok(payload), attempt),
            ChildAttempt::Err(e) => (
                FailureClass::Structured,
                JobOutcome::Errored {
                    category: e.category,
                    error: e.message,
                },
            ),
            ChildAttempt::Crashed(msg) => {
                shared.counters.crashes.fetch_add(1, Ordering::Relaxed);
                lane.instant(
                    "worker_crash",
                    &cell.label,
                    span.span_id(),
                    vec![("attempt".to_owned(), JsonValue::from(u64::from(attempt)))],
                );
                (FailureClass::Crash, JobOutcome::Poisoned { error: msg })
            }
            ChildAttempt::Hung => (
                FailureClass::Hang,
                JobOutcome::TimedOut {
                    error: format!("job process exceeded its deadline ({attempt} attempts)"),
                },
            ),
        };
        match policy.next_delay(class, attempt, retries) {
            Some(delay) => {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                attempt += 1;
            }
            None => return (failure, attempt),
        }
    }
}

/// Journals, tallies, and streams one cell's terminal outcome; the
/// last cell closes out the run.
fn finish_cell(shared: &Shared, run: &Arc<Run>, seq: usize, outcome: &JobOutcome, attempts: u32) {
    let cell = &run.cells[seq];
    {
        // The emit lock makes rseq assignment, the journal append, and
        // the client send one atomic step — an `attach` splicing into
        // the stream sees either all of a record or none of it.
        let _emit = run.emit.lock().unwrap_or_else(|e| e.into_inner());
        let rseq = run
            .journal
            .job_done_tracked(seq, &cell.key, &cell.label, outcome, attempts);
        run.tally(outcome);
        run.send_job_done(cell, outcome, attempts, rseq, false);
    }
    if run.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        finish_run(shared, run);
    }
}

/// Closes out a run: journal `run_end`, trace sidecar, the `run_end`
/// message, and the client socket.
fn finish_run(shared: &Shared, run: &Arc<Run>) {
    let (ok, cached, failed) = (
        run.ok.load(Ordering::Relaxed),
        run.cached.load(Ordering::Relaxed),
        run.failed.load(Ordering::Relaxed),
    );
    run.journal.run_end(ok, cached, failed);
    let events = run.recorder.drain_sorted();
    let lanes = run.recorder.lane_names();
    let meta: Vec<(String, JsonValue)> = vec![
        (
            "experiment".to_owned(),
            JsonValue::from(run.experiment.as_str()),
        ),
        ("run_id".to_owned(), JsonValue::from(run.id.as_str())),
        ("workers".to_owned(), JsonValue::from(run.workers)),
        ("service".to_owned(), JsonValue::Bool(true)),
    ];
    if let Err(e) = ftrace::write_jsonl(
        &run.trace_path,
        &meta,
        &lanes,
        &events,
        run.recorder.dropped(),
    ) {
        eprintln!(
            "cmpsim serve: cannot write {}: {e}",
            run.trace_path.display()
        );
    }
    // Graceful degradation: if any journal append failed (disk full),
    // the journal is an incomplete record — resuming or re-attaching
    // from it would silently drop cells. Downgrade the run to
    // non-resumable (remove the journal), count it, and keep serving;
    // the client still received every record over the live stream.
    let degraded = run.journal.degraded();
    if degraded {
        shared
            .counters
            .runs_degraded
            .fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "cmpsim serve: run {} degraded to non-resumable: {} journal append(s) failed \
             (disk full?); removing its incomplete journal",
            run.id,
            run.journal.append_failures()
        );
        if let Err(e) = std::fs::remove_file(run.journal.path()) {
            eprintln!(
                "cmpsim serve: cannot remove degraded journal {}: {e}",
                run.journal.path().display()
            );
        }
    }
    let mut end = vec![
        ("kind".to_owned(), JsonValue::from("run_end")),
        ("ok".to_owned(), JsonValue::from(ok)),
        ("cached".to_owned(), JsonValue::from(cached)),
        ("failed".to_owned(), JsonValue::from(failed)),
    ];
    if degraded {
        end.push(("journal_degraded".to_owned(), JsonValue::Bool(true)));
    }
    run.send(&JsonValue::Object(end));
    *run.client.lock().unwrap_or_else(|e| e.into_inner()) = None;
    shared
        .counters
        .runs_completed
        .fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Restart recovery & client reattach
// ---------------------------------------------------------------------

/// Reads a journal's verified records, stopping at the first torn line
/// — the same trust boundary as [`RunJournal::open`]'s replay.
fn read_journal_records(path: &std::path::Path) -> Vec<JsonValue> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map_while(|l| {
            cmpsim_telemetry::parse(l.trim())
                .ok()
                .and_then(|doc| record::verify(&doc, "record"))
        })
        .collect()
}

/// The journalled `job_done` records with `rseq` strictly greater than
/// `after`, in rseq order. The journal record shape *is* the wire
/// `job_done` shape, so these forward to a client verbatim.
fn journal_job_dones_after(path: &std::path::Path, after: u64) -> Vec<JsonValue> {
    let mut recs: Vec<(u64, JsonValue)> = read_journal_records(path)
        .into_iter()
        .filter(|r| r.get("kind").and_then(JsonValue::as_str) == Some("job_done"))
        .map(|r| (r.get("rseq").and_then(JsonValue::as_u64).unwrap_or(0), r))
        .filter(|(rseq, _)| *rseq > after)
        .collect();
    recs.sort_by_key(|(rseq, _)| *rseq);
    recs.into_iter().map(|(_, r)| r).collect()
}

/// Startup recovery: scan the journal directory and rebuild every run
/// a previous daemon incarnation left unfinished. Completed cells are
/// tallied straight from the journal; dangling in-flight and never-
/// started cells re-enter the scheduler under the ordinary
/// backoff/poison budget. Clients reattach (or `--resume`) whenever
/// they like — the runs execute either way.
fn recover_runs(shared: &Arc<Shared>) {
    let Ok(entries) = std::fs::read_dir(&shared.cfg.journal_dir) else {
        return; // no journal directory yet: a first boot
    };
    let mut names: Vec<String> = entries
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".jsonl") && !n.ends_with(".trace.jsonl"))
        .collect();
    names.sort(); // deterministic recovery order
    for name in names {
        let run_id = name.trim_end_matches(".jsonl").to_owned();
        recover_run(shared, &run_id);
    }
}

/// Rebuilds one journalled run, if it is unfinished and carries a
/// `submission` record (pre-submission-record journals and plain batch
/// journals are left alone — `--resume` still works on them).
fn recover_run(shared: &Arc<Shared>, run_id: &str) {
    let jc = JournalConfig::new(shared.cfg.journal_dir.clone(), run_id.to_owned()).resuming();
    let peek = read_journal_records(&jc.path());
    let ended = peek
        .iter()
        .any(|r| r.get("kind").and_then(JsonValue::as_str) == Some("run_end"));
    let has_submission = peek
        .iter()
        .any(|r| r.get("kind").and_then(JsonValue::as_str) == Some("submission"));
    if ended || !has_submission {
        return;
    }
    let (journal, replay) = match RunJournal::open(&jc) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("cmpsim serve: cannot reopen journal for run {run_id}: {e}");
            return;
        }
    };
    let Some((exe, experiment, cells)) = replay.submission.as_ref().and_then(|rec| {
        Some((
            PathBuf::from(rec.get("exe")?.as_str()?),
            rec.get("experiment")?.as_str()?.to_owned(),
            rec.get("cells")?
                .as_array()?
                .iter()
                .map(CellSpec::from_json)
                .collect::<Option<Vec<CellSpec>>>()?,
        ))
    }) else {
        eprintln!("cmpsim serve: run {run_id} has a malformed submission record; not recovered");
        return;
    };

    let mut pending: VecDeque<Pending> = VecDeque::new();
    let (mut ok, mut cached, mut failed) = (0usize, 0usize, 0usize);
    let mut requeued_in_flight = 0usize;
    for (i, cell) in cells.iter().enumerate() {
        match replay.completed.get(&cell.key) {
            Some(done) => match done.outcome {
                JobOutcome::Ok(_) => ok += 1,
                JobOutcome::Cached(_) => cached += 1,
                _ => failed += 1,
            },
            None => {
                if replay.in_flight.contains(&cell.key) {
                    requeued_in_flight += 1;
                }
                pending.push_back(Pending::fresh(i));
            }
        }
    }
    let total = cells.len();
    let done = total - pending.len();
    journal.run_start(run_id, total, done);

    let workers = shared.cfg.workers;
    let recorder = FlightRecorder::new();
    let service_lane = recorder.lane("service");
    let worker_lanes = (0..workers)
        .map(|i| recorder.lane(&format!("worker-{i}")))
        .collect();
    let trace_path = shared.cfg.journal_dir.join(format!("{run_id}.trace.jsonl"));
    service_lane.instant(
        "recovered",
        "",
        0,
        vec![
            ("run_id".to_owned(), JsonValue::from(run_id)),
            ("cells".to_owned(), JsonValue::from(total)),
            ("done".to_owned(), JsonValue::from(done)),
            ("requeued".to_owned(), JsonValue::from(pending.len())),
            ("in_flight".to_owned(), JsonValue::from(requeued_in_flight)),
        ],
    );
    let run = Arc::new(Run {
        id: run_id.to_owned(),
        experiment,
        exe,
        cells,
        journal,
        emit: Mutex::new(()),
        client: Mutex::new(None),
        remaining: AtomicUsize::new(pending.len()),
        ok: AtomicUsize::new(ok),
        cached: AtomicUsize::new(cached),
        failed: AtomicUsize::new(failed),
        recorder,
        service_lane,
        worker_lanes,
        trace_path,
        workers,
    });
    {
        let mut runs = shared.runs.lock().unwrap_or_else(|e| e.into_inner());
        runs.retain(|w| w.strong_count() > 0);
        runs.push(Arc::downgrade(&run));
    }
    shared
        .counters
        .runs_recovered
        .fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .cells_requeued
        .fetch_add(pending.len() as u64, Ordering::Relaxed);
    shared
        .counters
        .cells_total
        .fetch_add(total as u64, Ordering::Relaxed);
    eprintln!(
        "cmpsim serve: recovered run {run_id}: {done}/{total} cells already journalled, \
         {} re-enqueued",
        pending.len()
    );
    if pending.is_empty() {
        // Every cell finished but the `run_end` never landed: close out.
        finish_run(shared, &run);
    } else {
        let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
        sched.queue.push_back((run, pending));
        drop(sched);
        shared.work.notify_all();
    }
}

/// A client re-joining a run's record stream: replay what it missed
/// from the journal (by `rseq`), then splice it into the live stream —
/// or, for a finished run, close with `run_end`.
fn handle_attach(shared: &Arc<Shared>, mut stream: TcpStream, attach: &Attach) {
    let live = {
        let runs = shared.runs.lock().unwrap_or_else(|e| e.into_inner());
        runs.iter()
            .filter_map(Weak::upgrade)
            .find(|r| r.id == attach.run_id)
    };
    match live {
        Some(run) => attach_live(shared, stream, &run, attach.after_seq),
        None => {
            // Not live: either it finished (this boot or an earlier
            // one) and its journal closes the story, or we know nothing
            // about it.
            let path = shared
                .cfg
                .journal_dir
                .join(format!("{}.jsonl", attach.run_id));
            let records = read_journal_records(&path);
            let end = records
                .iter()
                .find(|r| r.get("kind").and_then(JsonValue::as_str) == Some("run_end"));
            let Some(end) = end else {
                send_error(
                    &mut stream,
                    &format!(
                        "unknown run {} (no journal, or unrecoverable)",
                        attach.run_id
                    ),
                );
                return;
            };
            let missed = journal_job_dones_after(&path, attach.after_seq);
            let attached = JsonValue::object([
                ("kind", JsonValue::from("attached")),
                ("run_id", JsonValue::from(attach.run_id.as_str())),
                ("replay", JsonValue::from(missed.len())),
            ]);
            if proto::write_msg(&mut stream, &attached).is_err() {
                return;
            }
            shared
                .counters
                .jobs_replayed_to_client
                .fetch_add(missed.len() as u64, Ordering::Relaxed);
            for rec in &missed {
                if proto::write_msg(&mut stream, rec).is_err() {
                    return;
                }
            }
            let _ = proto::write_msg(&mut stream, end);
        }
    }
}

/// Attaches to a live run: under the emit lock (so no record can land
/// between the journal read and the stream splice), replay the missed
/// records and install this socket as the run's client.
fn attach_live(shared: &Arc<Shared>, mut stream: TcpStream, run: &Arc<Run>, after_seq: u64) {
    let _emit = run.emit.lock().unwrap_or_else(|e| e.into_inner());
    if run.journal.degraded() {
        send_error(
            &mut stream,
            &format!(
                "run {} is degraded (journal append failures); reattach cannot replay it",
                run.id
            ),
        );
        return;
    }
    let missed = journal_job_dones_after(run.journal.path(), after_seq);
    let attached = JsonValue::object([
        ("kind", JsonValue::from("attached")),
        ("run_id", JsonValue::from(run.id.as_str())),
        ("replay", JsonValue::from(missed.len())),
    ]);
    if proto::write_msg(&mut stream, &attached).is_err() {
        return;
    }
    shared
        .counters
        .jobs_replayed_to_client
        .fetch_add(missed.len() as u64, Ordering::Relaxed);
    for rec in &missed {
        if proto::write_msg(&mut stream, rec).is_err() {
            return;
        }
    }
    run.service_lane.instant(
        "client_attach",
        "",
        0,
        vec![
            ("after_rseq".to_owned(), JsonValue::from(after_seq)),
            ("replayed".to_owned(), JsonValue::from(missed.len())),
        ],
    );
    if run.remaining.load(Ordering::Acquire) == 0 {
        // The run finished while the client was away; the replay above
        // already delivered every record.
        let _ = proto::write_msg(
            &mut stream,
            &JsonValue::object([
                ("kind", JsonValue::from("run_end")),
                ("ok", JsonValue::from(run.ok.load(Ordering::Relaxed))),
                (
                    "cached",
                    JsonValue::from(run.cached.load(Ordering::Relaxed)),
                ),
                (
                    "failed",
                    JsonValue::from(run.failed.load(Ordering::Relaxed)),
                ),
            ]),
        );
    } else {
        *run.client.lock().unwrap_or_else(|e| e.into_inner()) = Some(stream);
    }
}

// ---------------------------------------------------------------------
// Agent sessions
// ---------------------------------------------------------------------

/// Validates an agent handshake, registers the agent, and runs its
/// reader until disconnect/drain.
fn run_agent_session(
    shared: &Arc<Shared>,
    mut reader: proto::MsgReader<TcpStream>,
    mut stream: TcpStream,
    hello: AgentHello,
) {
    if let Some(expected) = shared.binary.as_deref() {
        if hello.binary != expected {
            send_error(
                &mut stream,
                &format!(
                    "binary mismatch: coordinator runs fingerprint {expected} \
                     (v{}), agent offered {} (v{}) — fleet members must run \
                     identical builds",
                    env!("CARGO_PKG_VERSION"),
                    hello.binary,
                    hello.version,
                ),
            );
            return;
        }
    }
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let id = shared.next_agent_id.fetch_add(1, Ordering::Relaxed) + 1;
    let agent = Arc::new(Agent {
        id,
        pid: hello.pid,
        slots: hello.slots.max(1),
        free: AtomicUsize::new(hello.slots.max(1)),
        done: AtomicU64::new(0),
        gone: AtomicBool::new(false),
        last_beat: Mutex::new(Instant::now()),
        writer: Mutex::new(writer),
    });
    if proto::write_msg(
        &mut stream,
        &JsonValue::object([
            ("kind", JsonValue::from("agent_welcome")),
            ("agent_id", JsonValue::from(id)),
            (
                "heartbeat_ms",
                JsonValue::from(shared.cfg.heartbeat.as_millis() as u64),
            ),
        ]),
    )
    .is_err()
    {
        return;
    }
    shared
        .agents
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id, Arc::clone(&agent));
    shared
        .counters
        .agents_joined
        .fetch_add(1, Ordering::Relaxed);

    // From here on, silence past the lease TTL means the agent is
    // dead — the heartbeat cadence guarantees traffic sooner.
    let _ = stream.set_read_timeout(Some(lease_ttl(&shared.cfg)));
    {
        let shared = Arc::clone(shared);
        let agent = Arc::clone(&agent);
        std::thread::spawn(move || agent_feeder(&shared, &agent));
    }
    agent_reader(shared, &agent, &mut reader);
}

/// The per-agent reader: heartbeats renew leases, `cell_result`
/// messages finish (or retry) dispatched cells. Exits into
/// [`reclaim_agent`] on disconnect, timeout, or drain.
fn agent_reader(
    shared: &Arc<Shared>,
    agent: &Arc<Agent>,
    reader: &mut proto::MsgReader<TcpStream>,
) {
    let reason = loop {
        if agent.gone.load(Ordering::Acquire) {
            break "connection closed".to_owned();
        }
        match reader.next() {
            Ok(Some(msg)) => {
                *agent.last_beat.lock().unwrap_or_else(|e| e.into_inner()) = Instant::now();
                match msg.get("kind").and_then(JsonValue::as_str) {
                    Some("heartbeat") => {
                        let ttl = lease_ttl(&shared.cfg);
                        let now = Instant::now();
                        if let Some(ids) = msg.get("leases").and_then(JsonValue::as_array) {
                            let mut leases =
                                shared.leases.lock().unwrap_or_else(|e| e.into_inner());
                            for id in ids.iter().filter_map(JsonValue::as_u64) {
                                if let Some(l) = leases.get_mut(&id) {
                                    if l.agent == agent.id {
                                        l.expires = now + ttl;
                                    }
                                }
                            }
                        }
                        let ack = JsonValue::object([("kind", JsonValue::from("heartbeat_ack"))]);
                        let mut w = agent.writer.lock().unwrap_or_else(|e| e.into_inner());
                        if proto::write_msg(&mut *w, &ack).is_err() {
                            break "heartbeat ack write failed".to_owned();
                        }
                    }
                    Some("cell_result") => handle_cell_result(shared, agent, &msg),
                    other => {
                        eprintln!("cmpsim serve: agent {} sent {other:?}; ignored", agent.id);
                    }
                }
            }
            Ok(None) => break "connection closed".to_owned(),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                break "missed heartbeats".to_owned();
            }
            Err(e) => break format!("read failed: {e}"),
        }
    };
    reclaim_agent(shared, agent, &reason);
}

/// The per-agent feeder: waits for a free slot and a due cell, claims
/// it, and dispatches it under a fresh lease. Exits when the agent is
/// gone or the daemon drains.
fn agent_feeder(shared: &Arc<Shared>, agent: &Arc<Agent>) {
    let poll = Duration::from_millis(250);
    loop {
        let popped = {
            let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if agent.gone.load(Ordering::Acquire) || sched.draining {
                    break None;
                }
                if agent.free.load(Ordering::Acquire) == 0 {
                    sched = shared
                        .work
                        .wait_timeout(sched, poll)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                    continue;
                }
                match try_pop(&mut sched, Instant::now()) {
                    Popped::Cell(run, pending, depth) => break Some((run, pending, depth)),
                    Popped::Wait(d) => {
                        sched = shared
                            .work
                            .wait_timeout(sched, d.min(poll))
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                    Popped::Drained => break None,
                    Popped::Empty => {
                        sched = shared
                            .work
                            .wait_timeout(sched, poll)
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                }
            }
        };
        let Some((run, pending, depth)) = popped else {
            return;
        };
        run.service_lane.counter("queue_depth", "", depth as f64);
        dispatch_to_agent(shared, agent, &run, pending);
    }
}

/// Claims one cell for an agent and ships it under a fresh lease; a
/// failed write re-enqueues the cell (still owned, no attempt burned)
/// and reclaims the agent.
fn dispatch_to_agent(shared: &Arc<Shared>, agent: &Arc<Agent>, run: &Arc<Run>, pending: Pending) {
    let seq = pending.seq;
    if !pending.owned {
        match claim(shared, run, seq) {
            Claim::Finished | Claim::Joined => return,
            Claim::Own => {}
        }
    }
    let cell = &run.cells[seq];
    let lease_id = shared.next_lease_id.fetch_add(1, Ordering::Relaxed) + 1;
    shared
        .leases
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(
            lease_id,
            Lease {
                run: Arc::clone(run),
                seq,
                attempt: pending.attempt,
                agent: agent.id,
                expires: Instant::now() + lease_ttl(&shared.cfg),
            },
        );
    agent.free.fetch_sub(1, Ordering::AcqRel);
    run.service_lane.instant(
        "dispatch",
        &cell.label,
        0,
        vec![
            ("agent".to_owned(), JsonValue::from(agent.id)),
            ("lease".to_owned(), JsonValue::from(lease_id)),
            (
                "attempt".to_owned(),
                JsonValue::from(u64::from(pending.attempt + 1)),
            ),
        ],
    );
    let msg = Dispatch {
        lease: lease_id,
        exe: run.exe.clone(),
        key: cell.key.clone(),
        label: cell.label.clone(),
        args: cell.args.clone(),
        timeout_ms: shared.cfg.job_timeout.map(|t| t.as_millis() as u64),
    }
    .to_msg();
    let sent = {
        let mut w = agent.writer.lock().unwrap_or_else(|e| e.into_inner());
        proto::write_msg(&mut *w, &msg).is_ok()
    };
    if !sent {
        shared
            .leases
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&lease_id);
        agent.free.fetch_add(1, Ordering::AcqRel);
        // The cell never left: back in the queue with no attempt
        // consumed, ownership intact.
        enqueue(
            shared,
            run,
            Pending {
                seq,
                attempt: pending.attempt,
                owned: true,
                not_before: None,
            },
        );
        reclaim_agent(shared, agent, "dispatch write failed");
    }
}

/// One agent-reported attempt outcome. Removing the lease is the
/// single finishing authority: a result whose lease was already
/// reclaimed is stale and dropped entirely.
fn handle_cell_result(shared: &Arc<Shared>, agent: &Arc<Agent>, msg: &JsonValue) {
    let lease_id = msg.get("lease").and_then(JsonValue::as_u64);
    let res = msg.get("result").and_then(proto::attempt_from_json);
    let (Some(lease_id), Some(res)) = (lease_id, res) else {
        eprintln!(
            "cmpsim serve: agent {} sent a malformed cell_result; ignored",
            agent.id
        );
        return;
    };
    let lease = shared
        .leases
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&lease_id);
    let Some(lease) = lease else {
        // Already reclaimed (and possibly re-run): the cache/journal
        // already converged on one entry; this late result is noise.
        shared
            .counters
            .stale_results
            .fetch_add(1, Ordering::Relaxed);
        shared.work.notify_all();
        return;
    };
    // Only a live lease returns the slot: a reconnected agent re-
    // reporting work from a previous session never claimed it on this
    // session's budget, so counting it here would inflate capacity.
    agent.free.fetch_add(1, Ordering::AcqRel);
    agent.done.fetch_add(1, Ordering::Relaxed);
    let run = lease.run;
    let seq = lease.seq;
    let attempt = lease.attempt + 1;
    let cell = &run.cells[seq];
    run.service_lane.instant(
        "cell_result",
        &cell.label,
        0,
        vec![
            ("agent".to_owned(), JsonValue::from(agent.id)),
            ("lease".to_owned(), JsonValue::from(lease_id)),
            (
                "kind".to_owned(),
                JsonValue::from(match &res {
                    ChildAttempt::Ok(_) => "ok",
                    ChildAttempt::Err(_) => "err",
                    ChildAttempt::Crashed(_) => "crashed",
                    ChildAttempt::Hung => "hung",
                }),
            ),
        ],
    );
    match res {
        ChildAttempt::Ok(payload) => {
            complete_owned(shared, &run, seq, &JobOutcome::Ok(payload), attempt);
        }
        ChildAttempt::Err(e) => retry_or_complete(
            shared,
            &run,
            seq,
            FailureClass::Structured,
            JobOutcome::Errored {
                category: e.category,
                error: e.message,
            },
            attempt,
        ),
        ChildAttempt::Crashed(m) => {
            shared.counters.crashes.fetch_add(1, Ordering::Relaxed);
            retry_or_complete(
                shared,
                &run,
                seq,
                FailureClass::Crash,
                JobOutcome::Poisoned { error: m },
                attempt,
            );
        }
        ChildAttempt::Hung => retry_or_complete(
            shared,
            &run,
            seq,
            FailureClass::Hang,
            JobOutcome::TimedOut {
                error: format!("job process exceeded its deadline ({attempt} attempts)"),
            },
            attempt,
        ),
    }
    shared.work.notify_all();
}

/// Declares an agent dead (or drained): deregisters it, shuts its
/// socket, and re-enqueues every lease it held as a crash-class retry.
fn reclaim_agent(shared: &Arc<Shared>, agent: &Arc<Agent>, reason: &str) {
    if agent.gone.swap(true, Ordering::SeqCst) {
        return;
    }
    shared
        .agents
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&agent.id);
    let draining = shared
        .sched
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .draining;
    if !draining {
        shared.counters.agents_lost.fetch_add(1, Ordering::Relaxed);
    }
    {
        let w = agent.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = w.shutdown(std::net::Shutdown::Both);
    }
    let mine: Vec<(u64, Lease)> = {
        let mut leases = shared.leases.lock().unwrap_or_else(|e| e.into_inner());
        let ids: Vec<u64> = leases
            .iter()
            .filter(|(_, l)| l.agent == agent.id)
            .map(|(id, _)| *id)
            .collect();
        ids.into_iter()
            .filter_map(|id| leases.remove(&id).map(|l| (id, l)))
            .collect()
    };
    for (lease_id, lease) in mine {
        reclaim_lease(shared, agent.id, lease_id, lease, reason);
    }
    shared.work.notify_all();
}

/// Re-enqueues (or poisons) one reclaimed lease.
fn reclaim_lease(shared: &Shared, agent_id: u64, lease_id: u64, lease: Lease, reason: &str) {
    shared
        .counters
        .cells_reclaimed
        .fetch_add(1, Ordering::Relaxed);
    let cell = &lease.run.cells[lease.seq];
    lease.run.service_lane.instant(
        "cell_reclaimed",
        &cell.label,
        0,
        vec![
            ("agent".to_owned(), JsonValue::from(agent_id)),
            ("lease".to_owned(), JsonValue::from(lease_id)),
            ("reason".to_owned(), JsonValue::from(reason)),
        ],
    );
    retry_or_complete(
        shared,
        &lease.run,
        lease.seq,
        FailureClass::Crash,
        JobOutcome::Poisoned {
            error: format!("agent {agent_id} lost mid-cell: {reason}"),
        },
        lease.attempt + 1,
    );
}

/// The reaper + pinger: expires silent agents' leases, keeps live
/// clients' sockets warm, and broadcasts `drain` at shutdown.
fn reaper_loop(shared: &Arc<Shared>) {
    let tick = (shared.cfg.heartbeat / 2).min(Duration::from_millis(250));
    let mut last_ping = Instant::now();
    loop {
        {
            let sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
            if sched.draining {
                break;
            }
            let _ = shared
                .work
                .wait_timeout(sched, tick)
                .unwrap_or_else(|e| e.into_inner());
        }
        let now = Instant::now();

        // Expired leases: a listed lease is renewed by every heartbeat,
        // so expiry means the whole agent went silent — reclaim it. An
        // orphan lease (its agent already deregistered, e.g. inserted
        // by a feeder racing a reclaim) is reclaimed directly.
        let expired: Vec<(u64, u64)> = {
            let leases = shared.leases.lock().unwrap_or_else(|e| e.into_inner());
            leases
                .iter()
                .filter(|(_, l)| l.expires <= now)
                .map(|(id, l)| (*id, l.agent))
                .collect()
        };
        let mut reclaimed_agents: HashSet<u64> = HashSet::new();
        for (lease_id, agent_id) in expired {
            let agent = shared
                .agents
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(&agent_id)
                .cloned();
            match agent {
                Some(agent) => {
                    if reclaimed_agents.insert(agent_id) {
                        reclaim_agent(shared, &agent, "missed heartbeats");
                    }
                }
                None => {
                    let lease = shared
                        .leases
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(&lease_id);
                    if let Some(lease) = lease {
                        reclaim_lease(shared, agent_id, lease_id, lease, "agent already gone");
                        shared.work.notify_all();
                    }
                }
            }
        }

        // Keepalive pings let clients hold a read deadline without
        // tripping it during long cells.
        if now.duration_since(last_ping) >= shared.cfg.heartbeat {
            last_ping = now;
            let ping = JsonValue::object([("kind", JsonValue::from("ping"))]);
            let runs = shared.runs.lock().unwrap_or_else(|e| e.into_inner());
            for run in runs.iter().filter_map(Weak::upgrade) {
                if run.remaining.load(Ordering::Acquire) > 0 {
                    run.send(&ping);
                }
            }
        }
    }

    // Drain: tell every agent to exit cleanly and unblock its reader.
    let agents: Vec<Arc<Agent>> = shared
        .agents
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
        .cloned()
        .collect();
    let drain = JsonValue::object([("kind", JsonValue::from("drain"))]);
    for agent in agents {
        let w = agent.writer.lock().unwrap_or_else(|e| e.into_inner());
        let mut stream = &*w;
        let _ = proto::write_msg(&mut stream, &drain);
        let _ = w.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cmpsim_service_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A fake "experiment binary": `/bin/echo` printing the marker
    /// line, so coordinator tests run without building cmpsim.
    #[cfg(unix)]
    fn echo_cell(seq: usize, tag: &str) -> CellSpec {
        CellSpec {
            seq,
            key: format!("experiment=echo;cell={tag}"),
            label: tag.to_owned(),
            args: vec![format!(
                "__cmpsim_result__ {{\"ok\":{{\"cell\":\"{tag}\"}}}}"
            )],
        }
    }

    #[cfg(unix)]
    fn echo_submission(run_id: Option<String>, resume: bool, tags: &[&str]) -> Submission {
        Submission {
            exe: PathBuf::from("/bin/echo"),
            experiment: "echo".to_owned(),
            run_id,
            resume,
            cells: tags
                .iter()
                .enumerate()
                .map(|(i, t)| echo_cell(i, t))
                .collect(),
        }
    }

    #[cfg(unix)]
    #[test]
    fn coordinator_runs_a_submission_end_to_end() {
        let dir = temp_dir("e2e");
        let shutdown = ShutdownFlag::default();
        let coord = Coordinator::bind(ServeConfig {
            workers: 2,
            cache_dir: Some(dir.join("cache")),
            journal_dir: dir.join("journal"),
            shutdown: Some(shutdown.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = coord.local_addr().unwrap().to_string();
        std::thread::scope(|s| {
            s.spawn(|| coord.run());

            let sub = echo_submission(None, false, &["a", "b", "c"]);
            let out = client::submit(&addr, &sub).unwrap();
            assert_eq!(out.report.ok_count(), 3);
            assert_eq!(out.report.jobs[0].label, "a");
            assert_eq!(
                out.report.jobs[1]
                    .outcome
                    .payload()
                    .and_then(|p| p.get("cell"))
                    .and_then(JsonValue::as_str),
                Some("b")
            );

            // Same cells again: all served from the shared cache.
            let again = client::submit(&addr, &sub).unwrap();
            assert_eq!(again.report.cached_count(), 3);

            // Resuming the finished run replays it from the journal.
            let resumed = client::submit(
                &addr,
                &echo_submission(Some(out.run_id.clone()), true, &["a", "b", "c"]),
            )
            .unwrap();
            assert_eq!(resumed.report.replayed_count(), 3);
            assert_eq!(resumed.report.recovered, 0);

            let counters = client::status(&addr).unwrap();
            assert_eq!(
                counters.get("executed").and_then(JsonValue::as_u64),
                Some(3),
                "distinct cells execute exactly once: {}",
                counters.to_json()
            );
            assert_eq!(
                counters.get("replayed").and_then(JsonValue::as_u64),
                Some(3)
            );
            // No agents connected: the fleet listing is present and
            // empty.
            assert_eq!(
                counters
                    .get("agents")
                    .and_then(JsonValue::as_array)
                    .map(<[JsonValue]>::len),
                Some(0)
            );

            // The run left report-able artifacts behind.
            assert!(dir
                .join("journal")
                .join(format!("{}.jsonl", out.run_id))
                .exists());
            assert!(dir
                .join("journal")
                .join(format!("{}.trace.jsonl", out.run_id))
                .exists());

            shutdown.request();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn crashing_cell_is_quarantined_not_fatal() {
        let dir = temp_dir("crash");
        let shutdown = ShutdownFlag::default();
        let coord = Coordinator::bind(ServeConfig {
            workers: 1,
            journal_dir: dir.join("journal"),
            backoff: BackoffPolicy::immediate(),
            shutdown: Some(shutdown.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = coord.local_addr().unwrap().to_string();
        std::thread::scope(|s| {
            s.spawn(|| coord.run());
            // `/bin/echo` without a marker line: dies without reporting
            // → crash → retried → poisoned. A healthy neighbour is
            // unaffected.
            let mut sub = echo_submission(None, false, &["healthy"]);
            sub.cells.push(CellSpec {
                seq: 1,
                key: "experiment=echo;cell=bad".to_owned(),
                label: "bad".to_owned(),
                args: vec!["no marker here".to_owned()],
            });
            let out = client::submit(&addr, &sub).unwrap();
            assert_eq!(out.report.ok_count(), 1);
            assert_eq!(out.report.poisoned_count(), 1);
            assert_eq!(
                out.report.jobs[1].attempts, 2,
                "one retry before quarantine"
            );
            shutdown.request();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A raw-socket stand-in for `cmpsim agent`: handshakes with the
    /// coordinator's own (test binary) fingerprint, so the binary check
    /// passes, and hands control back with the welcome consumed.
    fn fake_agent(addr: SocketAddr, slots: usize) -> (TcpStream, proto::MsgReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let hello = AgentHello {
            protocol: PROTOCOL_VERSION,
            binary: file_fingerprint(&std::env::current_exe().unwrap()).unwrap(),
            version: env!("CARGO_PKG_VERSION").to_owned(),
            slots,
            pid: std::process::id(),
        };
        let mut w = &stream;
        proto::write_msg(&mut w, &hello.to_msg()).unwrap();
        let mut reader = proto::MsgReader::new(stream.try_clone().unwrap());
        let welcome = reader.next().unwrap().expect("a welcome");
        assert_eq!(
            welcome.get("kind").and_then(JsonValue::as_str),
            Some("agent_welcome"),
            "handshake rejected: {}",
            welcome.to_json()
        );
        (stream, reader)
    }

    fn next_dispatch(reader: &mut proto::MsgReader<TcpStream>) -> JsonValue {
        loop {
            let msg = reader.next().unwrap().expect("a message");
            if msg.get("kind").and_then(JsonValue::as_str) == Some("dispatch") {
                return msg;
            }
        }
    }

    fn agents_only_config(dir: &std::path::Path, shutdown: &ShutdownFlag) -> ServeConfig {
        ServeConfig {
            workers: 0,
            retries: 0,
            journal_dir: dir.join("journal"),
            backoff: BackoffPolicy::immediate(),
            heartbeat: Duration::from_millis(100),
            shutdown: Some(shutdown.clone()),
            ..ServeConfig::default()
        }
    }

    #[cfg(unix)]
    #[test]
    fn agents_only_coordinator_runs_cells_on_an_agent() {
        let dir = temp_dir("agent_ok");
        let shutdown = ShutdownFlag::default();
        let coord = Coordinator::bind(agents_only_config(&dir, &shutdown)).unwrap();
        let addr = coord.local_addr().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| coord.run());
            let agent = s.spawn(move || {
                let (stream, mut reader) = fake_agent(addr, 2);
                // Answer one dispatch with a crafted success.
                let d = next_dispatch(&mut reader);
                let lease = d.get("lease").and_then(JsonValue::as_u64).unwrap();
                let result = proto::attempt_to_json(&ChildAttempt::Ok(JsonValue::object([(
                    "cell",
                    JsonValue::from("remote"),
                )])));
                let mut w = &stream;
                proto::write_msg(
                    &mut w,
                    &JsonValue::object([
                        ("kind", JsonValue::from("cell_result")),
                        ("lease", JsonValue::from(lease)),
                        ("result", result),
                    ]),
                )
                .unwrap();
                // Hold the connection until the run is over.
                let _ = reader.next();
            });

            let out =
                client::submit(&addr.to_string(), &echo_submission(None, false, &["a"])).unwrap();
            assert_eq!(out.report.ok_count(), 1);
            assert_eq!(
                out.report.jobs[0]
                    .outcome
                    .payload()
                    .and_then(|p| p.get("cell"))
                    .and_then(JsonValue::as_str),
                Some("remote"),
                "the agent's payload reached the client"
            );
            let counters = client::status(&addr.to_string()).unwrap();
            assert_eq!(
                counters.get("agents_joined").and_then(JsonValue::as_u64),
                Some(1)
            );
            assert_eq!(
                counters.get("cells_reclaimed").and_then(JsonValue::as_u64),
                Some(0)
            );
            shutdown.request();
            agent.join().unwrap();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn disconnected_agents_cells_are_reclaimed_to_poison() {
        let dir = temp_dir("agent_lost");
        let shutdown = ShutdownFlag::default();
        let coord = Coordinator::bind(agents_only_config(&dir, &shutdown)).unwrap();
        let addr = coord.local_addr().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| coord.run());
            s.spawn(move || {
                let (stream, mut reader) = fake_agent(addr, 1);
                // Take the dispatch, then die without a word.
                let _ = next_dispatch(&mut reader);
                drop(stream);
            });

            // retries: 0, no other executor → the reclaimed cell is
            // quarantined, and the client still gets its one job_done.
            let out =
                client::submit(&addr.to_string(), &echo_submission(None, false, &["a"])).unwrap();
            assert_eq!(out.report.poisoned_count(), 1);
            let err = out.report.jobs[0].outcome.to_json().to_json();
            assert!(
                err.contains("lost mid-cell"),
                "poison names the loss: {err}"
            );
            let counters = client::status(&addr.to_string()).unwrap();
            assert_eq!(
                counters.get("cells_reclaimed").and_then(JsonValue::as_u64),
                Some(1)
            );
            assert_eq!(
                counters.get("agents_lost").and_then(JsonValue::as_u64),
                Some(1)
            );
            shutdown.request();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn silent_agent_misses_heartbeats_and_is_reclaimed() {
        let dir = temp_dir("agent_silent");
        let shutdown = ShutdownFlag::default();
        let coord = Coordinator::bind(agents_only_config(&dir, &shutdown)).unwrap();
        let addr = coord.local_addr().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| coord.run());
            let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
            s.spawn(move || {
                let (stream, mut reader) = fake_agent(addr, 1);
                // Take the dispatch, then go silent — no heartbeats, no
                // result, socket held open (a wedged host, not a dead
                // one).
                let _ = next_dispatch(&mut reader);
                let _ = done_rx.recv_timeout(Duration::from_secs(30));
                drop(stream);
            });

            let out =
                client::submit(&addr.to_string(), &echo_submission(None, false, &["a"])).unwrap();
            assert_eq!(out.report.poisoned_count(), 1);
            let err = out.report.jobs[0].outcome.to_json().to_json();
            assert!(
                err.contains("missed heartbeats"),
                "poison names the silence: {err}"
            );
            let counters = client::status(&addr.to_string()).unwrap();
            assert_eq!(
                counters.get("agents_lost").and_then(JsonValue::as_u64),
                Some(1)
            );
            let _ = done_tx.send(());
            shutdown.request();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Sends an `attach` and returns the reader positioned after the
    /// `attached` reply, plus that reply.
    fn raw_attach(
        addr: SocketAddr,
        run_id: &str,
        after_seq: u64,
    ) -> (proto::MsgReader<TcpStream>, JsonValue) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let attach = Attach {
            run_id: run_id.to_owned(),
            after_seq,
        };
        proto::write_msg(&mut stream, &attach.to_msg()).unwrap();
        let mut reader = proto::MsgReader::new(stream);
        let reply = reader.next().unwrap().expect("an attach reply");
        (reader, reply)
    }

    #[cfg(unix)]
    #[test]
    fn restart_closes_out_a_fully_executed_journal_and_serves_attach() {
        let dir = temp_dir("recover_done");
        let sub = echo_submission(Some("run-reco".to_owned()), false, &["a", "b"]);
        {
            // The journal a dead daemon left behind: every cell done,
            // but it never lived to write the run_end.
            let (journal, _) = RunJournal::open(&JournalConfig::new(
                dir.join("journal"),
                "run-reco".to_owned(),
            ))
            .unwrap();
            journal.run_start("run-reco", 2, 0);
            journal.append_record(submission_record("run-reco", &sub));
            for (i, cell) in sub.cells.iter().enumerate() {
                journal.job_start(i, &cell.key, &cell.label);
                journal.job_done_tracked(
                    i,
                    &cell.key,
                    &cell.label,
                    &JobOutcome::Ok(JsonValue::object([(
                        "cell",
                        JsonValue::from(cell.label.as_str()),
                    )])),
                    1,
                );
            }
        }
        let shutdown = ShutdownFlag::default();
        let coord = Coordinator::bind(ServeConfig {
            workers: 1,
            journal_dir: dir.join("journal"),
            shutdown: Some(shutdown.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = coord.local_addr().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| coord.run());

            let counters = client::status(&addr.to_string()).unwrap();
            assert_eq!(
                counters.get("runs_recovered").and_then(JsonValue::as_u64),
                Some(1)
            );
            assert_eq!(
                counters.get("cells_requeued").and_then(JsonValue::as_u64),
                Some(0),
                "nothing was left to execute"
            );

            // Recovery closed the run out: the journal now ends.
            let recs = read_journal_records(&dir.join("journal").join("run-reco.jsonl"));
            assert!(
                recs.iter()
                    .any(|r| r.get("kind").and_then(JsonValue::as_str) == Some("run_end")),
                "recovery wrote the missing run_end"
            );

            // A reattaching client gets the whole record stream back.
            let (mut reader, attached) = raw_attach(addr, "run-reco", 0);
            assert_eq!(
                attached.get("kind").and_then(JsonValue::as_str),
                Some("attached"),
                "{}",
                attached.to_json()
            );
            assert_eq!(attached.get("replay").and_then(JsonValue::as_u64), Some(2));
            let d1 = reader.next().unwrap().unwrap();
            assert_eq!(d1.get("kind").and_then(JsonValue::as_str), Some("job_done"));
            assert_eq!(d1.get("rseq").and_then(JsonValue::as_u64), Some(1));
            let d2 = reader.next().unwrap().unwrap();
            assert_eq!(d2.get("rseq").and_then(JsonValue::as_u64), Some(2));
            let end = reader.next().unwrap().unwrap();
            assert_eq!(end.get("kind").and_then(JsonValue::as_str), Some("run_end"));
            assert_eq!(end.get("ok").and_then(JsonValue::as_u64), Some(2));

            // Attaching to a run nobody journalled is a structured
            // error, not a hang.
            let (_r, reply) = raw_attach(addr, "no-such-run", 0);
            assert_eq!(reply.get("kind").and_then(JsonValue::as_str), Some("error"));

            shutdown.request();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn restart_reexecutes_dangling_in_flight_cells() {
        let dir = temp_dir("recover_dangling");
        let sub = echo_submission(Some("run-dangle".to_owned()), false, &["a", "b"]);
        {
            let (journal, _) = RunJournal::open(&JournalConfig::new(
                dir.join("journal"),
                "run-dangle".to_owned(),
            ))
            .unwrap();
            journal.run_start("run-dangle", 2, 0);
            journal.append_record(submission_record("run-dangle", &sub));
            journal.job_start(0, &sub.cells[0].key, "a");
            journal.job_done_tracked(
                0,
                &sub.cells[0].key,
                "a",
                &JobOutcome::Ok(JsonValue::object([("cell", JsonValue::from("a"))])),
                1,
            );
            // Cell b was mid-flight when the daemon died: a job_start
            // with no matching job_done.
            journal.job_start(1, &sub.cells[1].key, "b");
        }
        let shutdown = ShutdownFlag::default();
        let coord = Coordinator::bind(ServeConfig {
            workers: 1,
            journal_dir: dir.join("journal"),
            shutdown: Some(shutdown.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = coord.local_addr().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| coord.run());

            let counters = client::status(&addr.to_string()).unwrap();
            assert_eq!(
                counters.get("runs_recovered").and_then(JsonValue::as_u64),
                Some(1)
            );
            assert_eq!(
                counters.get("cells_requeued").and_then(JsonValue::as_u64),
                Some(1),
                "the dangling cell re-entered the queue"
            );

            // The recovered run re-executes cell b with no client
            // attached and closes out.
            let path = dir.join("journal").join("run-dangle.jsonl");
            let deadline = Instant::now() + Duration::from_secs(60);
            while Instant::now() < deadline {
                let recs = read_journal_records(&path);
                if recs
                    .iter()
                    .any(|r| r.get("kind").and_then(JsonValue::as_str) == Some("run_end"))
                {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            let recs = read_journal_records(&path);
            let dones: Vec<&JsonValue> = recs
                .iter()
                .filter(|r| r.get("kind").and_then(JsonValue::as_str) == Some("job_done"))
                .collect();
            assert_eq!(
                dones.len(),
                2,
                "exactly one job_done per cell across both incarnations"
            );
            assert_eq!(
                dones[1].get("rseq").and_then(JsonValue::as_u64),
                Some(2),
                "rseq numbering resumed where the old incarnation stopped"
            );
            assert_eq!(dones[1].get("label").and_then(JsonValue::as_str), Some("b"));

            // A client that already saw rseq 1 asks only for the rest.
            let (mut reader, attached) = raw_attach(addr, "run-dangle", 1);
            assert_eq!(
                attached.get("kind").and_then(JsonValue::as_str),
                Some("attached"),
                "{}",
                attached.to_json()
            );
            assert_eq!(attached.get("replay").and_then(JsonValue::as_u64), Some(1));
            let d = reader.next().unwrap().unwrap();
            assert_eq!(d.get("label").and_then(JsonValue::as_str), Some("b"));
            let end = reader.next().unwrap().unwrap();
            assert_eq!(end.get("kind").and_then(JsonValue::as_str), Some("run_end"));

            let counters = client::status(&addr.to_string()).unwrap();
            assert_eq!(
                counters
                    .get("jobs_replayed_to_client")
                    .and_then(JsonValue::as_u64),
                Some(1)
            );
            shutdown.request();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_protocol_version_gets_a_structured_error() {
        let dir = temp_dir("proto_reject");
        let shutdown = ShutdownFlag::default();
        let coord = Coordinator::bind(ServeConfig {
            workers: 0,
            journal_dir: dir.join("journal"),
            shutdown: Some(shutdown.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = coord.local_addr().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| coord.run());

            // A hello from the future: protocol version 999.
            let mut stream = TcpStream::connect(addr).unwrap();
            let hello = JsonValue::object([
                ("kind", JsonValue::from("agent_hello")),
                ("protocol", JsonValue::from(999u64)),
                ("binary", JsonValue::from("0000000000000000")),
                ("version", JsonValue::from("9.9.9")),
                ("slots", JsonValue::from(1u64)),
                ("pid", JsonValue::from(1u64)),
            ]);
            proto::write_msg(&mut stream, &hello).unwrap();
            let mut reader = proto::MsgReader::new(stream.try_clone().unwrap());
            let reply = reader.next().unwrap().expect("an error reply");
            assert_eq!(reply.get("kind").and_then(JsonValue::as_str), Some("error"));
            let detail = reply
                .get("message")
                .and_then(JsonValue::as_str)
                .unwrap_or_default();
            assert!(detail.contains("v999"), "names the peer version: {detail}");
            assert!(
                detail.contains(&format!("v{PROTOCOL_VERSION}")),
                "names the coordinator version: {detail}"
            );

            shutdown.request();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_binary_fingerprint_gets_a_structured_error() {
        let dir = temp_dir("binary_reject");
        let shutdown = ShutdownFlag::default();
        let coord = Coordinator::bind(ServeConfig {
            workers: 0,
            journal_dir: dir.join("journal"),
            shutdown: Some(shutdown.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = coord.local_addr().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| coord.run());

            let hello = AgentHello {
                protocol: PROTOCOL_VERSION,
                binary: "1111111111111111".to_owned(),
                version: "0.0.1".to_owned(),
                slots: 1,
                pid: 1,
            };
            let mut stream = TcpStream::connect(addr).unwrap();
            proto::write_msg(&mut stream, &hello.to_msg()).unwrap();
            let mut reader = proto::MsgReader::new(stream.try_clone().unwrap());
            let reply = reader.next().unwrap().expect("an error reply");
            assert_eq!(reply.get("kind").and_then(JsonValue::as_str), Some("error"));
            let detail = reply
                .get("message")
                .and_then(JsonValue::as_str)
                .unwrap_or_default();
            assert!(
                detail.contains("1111111111111111"),
                "names the agent fingerprint: {detail}"
            );
            assert!(detail.contains("binary mismatch"), "{detail}");

            // No agent joined.
            let counters = client::status(&addr.to_string()).unwrap();
            assert_eq!(
                counters.get("agents_joined").and_then(JsonValue::as_u64),
                Some(0)
            );
            shutdown.request();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
