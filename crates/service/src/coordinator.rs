//! The coordinator daemon: accept loop, fair scheduler, worker fleet.
//!
//! One [`Coordinator`] owns a TCP listener, a fleet of worker threads
//! (each supervising one child process at a time via
//! [`cmpsim_runner::run_program`]), the shared content-addressed
//! result cache, and a per-run write-ahead journal + flight recorder.
//!
//! **Scheduling** is round-robin across runs: the queue holds
//! `(run, pending cells)` entries; a worker pops the front run, takes
//! *one* cell, and pushes the run to the back. Concurrent sweeps
//! therefore interleave cell-by-cell — a two-cell status probe is
//! never starved behind a 64-cell paper-scale sweep.
//!
//! **Dedup** is two-layered. A cell whose key is already in the shared
//! result cache streams back as `cached` without executing. A cell
//! whose key is currently *executing* for another run joins that
//! execution as a waiter: when the owner finishes, waiters receive the
//! payload as `cached` (or the failure verbatim), so overlapping
//! concurrent submissions execute each distinct cell exactly once.
//!
//! **Failure model**: a worker child that crashes (SIGKILL, abort,
//! OOM) is retried on the run's [`BackoffPolicy`] schedule and
//! quarantined as `poisoned` when the budget runs out — the cell
//! re-shards transparently; the client just sees one `job_done`. A
//! client that disconnects mid-sweep stops receiving records, but the
//! run finishes and journals server-side, so `--resume` replays it. A
//! coordinator crash leaves the journal; resubmitting with `resume`
//! replays completed cells and re-executes in-flight ones.

use crate::proto::{self, CellSpec, Submission};
use cmpsim_runner::{
    fresh_run_id, run_program, run_program_sabotaged, BackoffPolicy, ChildAttempt, FailureClass,
    JobKey, JobOutcome, JournalConfig, ResultCache, RunJournal, ShutdownFlag,
};
use cmpsim_telemetry::trace::{self as ftrace, FlightRecorder, Lane};
use cmpsim_telemetry::JsonValue;
use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How the daemon runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port `0` picks a free port (see
    /// [`Coordinator::local_addr`]).
    pub listen: String,
    /// Worker threads — each supervises one child process at a time.
    pub workers: usize,
    /// Root of the shared content-addressed result cache; `None`
    /// disables caching (dedup of *in-flight* work still applies).
    pub cache_dir: Option<PathBuf>,
    /// Directory for per-run journals and trace sidecars.
    pub journal_dir: PathBuf,
    /// Extra attempts for a crashed/hung cell.
    pub retries: u32,
    /// Per-cell watchdog deadline; the child is killed at it.
    pub job_timeout: Option<Duration>,
    /// Retry/backoff schedule for failed attempts.
    pub backoff: BackoffPolicy,
    /// Chaos hook: SIGKILL the first child spawned for a cell with
    /// this label (once per daemon lifetime), so tests and CI exercise
    /// the genuine crash/re-shard path.
    pub chaos_kill_label: Option<String>,
    /// Graceful-shutdown flag; when set, the accept loop stops and
    /// workers drain.
    pub shutdown: Option<ShutdownFlag>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_owned(),
            workers: 2,
            cache_dir: None,
            journal_dir: PathBuf::from("results/journal"),
            retries: 1,
            job_timeout: None,
            backoff: BackoffPolicy::default(),
            chaos_kill_label: None,
            shutdown: None,
        }
    }
}

/// Lifetime counters, exported over `status` and into the service
/// trace lane.
#[derive(Debug, Default)]
struct Counters {
    submissions: AtomicU64,
    runs_completed: AtomicU64,
    cells_total: AtomicU64,
    executed: AtomicU64,
    cache_hits: AtomicU64,
    dedup_joins: AtomicU64,
    replayed: AtomicU64,
    crashes: AtomicU64,
}

impl Counters {
    fn snapshot(&self, workers: usize) -> JsonValue {
        let get = |a: &AtomicU64| JsonValue::U64(a.load(Ordering::Relaxed));
        JsonValue::object([
            ("kind", JsonValue::from("counters")),
            ("workers", JsonValue::from(workers)),
            ("submissions", get(&self.submissions)),
            ("runs_completed", get(&self.runs_completed)),
            ("cells_total", get(&self.cells_total)),
            ("executed", get(&self.executed)),
            ("cache_hits", get(&self.cache_hits)),
            ("dedup_joins", get(&self.dedup_joins)),
            ("replayed", get(&self.replayed)),
            ("crashes", get(&self.crashes)),
        ])
    }
}

/// One accepted submission, shared between the scheduler and workers.
struct Run {
    id: String,
    experiment: String,
    exe: PathBuf,
    cells: Vec<CellSpec>,
    journal: RunJournal,
    /// The client's write side; `None` once the client is gone (the
    /// run still completes — `--resume` replays it).
    client: Mutex<Option<TcpStream>>,
    /// Pending (non-replayed) cells left; the run ends at zero.
    remaining: AtomicUsize,
    ok: AtomicUsize,
    cached: AtomicUsize,
    failed: AtomicUsize,
    recorder: Arc<FlightRecorder>,
    service_lane: Lane,
    worker_lanes: Vec<Lane>,
    trace_path: PathBuf,
    workers: usize,
}

impl Run {
    fn tally(&self, outcome: &JobOutcome) {
        match outcome {
            JobOutcome::Ok(_) => &self.ok,
            JobOutcome::Cached(_) => &self.cached,
            _ => &self.failed,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Streams one message to the client; a failed write marks the
    /// client gone and the computation carries on.
    fn send(&self, body: &JsonValue) {
        let mut client = self.client.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stream) = client.as_mut() {
            if proto::write_msg(stream, body).is_err() {
                *client = None;
            }
        }
    }

    fn send_job_done(&self, cell: &CellSpec, outcome: &JobOutcome, attempts: u32, replayed: bool) {
        let mut fields = vec![
            ("kind".to_owned(), JsonValue::from("job_done")),
            ("seq".to_owned(), JsonValue::from(cell.seq)),
            ("key".to_owned(), JsonValue::from(cell.key.as_str())),
            ("label".to_owned(), JsonValue::from(cell.label.as_str())),
            ("attempts".to_owned(), JsonValue::from(u64::from(attempts))),
            ("outcome".to_owned(), outcome.to_json()),
        ];
        if replayed {
            fields.push(("replayed".to_owned(), JsonValue::Bool(true)));
        }
        self.send(&JsonValue::Object(fields));
    }
}

/// State shared by the accept loop and the worker fleet.
struct Shared {
    cfg: ServeConfig,
    cache: Option<ResultCache>,
    sched: Mutex<Sched>,
    work: Condvar,
    counters: Counters,
    chaos_armed: AtomicBool,
}

#[derive(Default)]
struct Sched {
    /// Fair rotation: a worker pops the front run, takes one cell,
    /// pushes the run back.
    queue: VecDeque<(Arc<Run>, VecDeque<usize>)>,
    /// Canonical key → waiters joining the in-flight execution.
    inflight: HashMap<String, Vec<(Arc<Run>, usize)>>,
    draining: bool,
}

/// The daemon: bind, then [`run`](Coordinator::run) until shut down.
pub struct Coordinator {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Binds the listen socket (port `0` picks a free port).
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, permission).
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Coordinator> {
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let cache = cfg.cache_dir.clone().map(ResultCache::new);
        Ok(Coordinator {
            listener,
            shared: Arc::new(Shared {
                cfg,
                cache,
                sched: Mutex::new(Sched::default()),
                work: Condvar::new(),
                counters: Counters::default(),
                chaos_armed: AtomicBool::new(true),
            }),
        })
    }

    /// The bound address — what clients `--connect` to.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures (never expected post-bind).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until the shutdown flag fires (or forever without one):
    /// accepts connections, spawns a handler thread per client, and
    /// runs the worker fleet. Returns after a graceful drain.
    pub fn run(&self) {
        std::thread::scope(|s| {
            for wid in 0..self.shared.cfg.workers.max(1) {
                let shared = Arc::clone(&self.shared);
                s.spawn(move || worker_loop(&shared, wid));
            }
            loop {
                if self
                    .shared
                    .cfg
                    .shutdown
                    .as_ref()
                    .is_some_and(ShutdownFlag::requested)
                {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let shared = Arc::clone(&self.shared);
                        s.spawn(move || handle_conn(&shared, stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    Err(e) => {
                        eprintln!("cmpsim serve: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
            let mut sched = self.shared.sched.lock().unwrap_or_else(|e| e.into_inner());
            sched.draining = true;
            drop(sched);
            self.shared.work.notify_all();
        });
    }
}

/// One client connection: read the request line, dispatch.
fn handle_conn(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    let msg = match proto::read_msg(&mut reader) {
        Ok(Some(msg)) => msg,
        Ok(None) => return,
        Err(e) => {
            send_error(&mut write_half, &format!("bad request: {e}"));
            return;
        }
    };
    match msg.get("kind").and_then(JsonValue::as_str) {
        Some("status") => {
            let snapshot = shared.counters.snapshot(shared.cfg.workers.max(1));
            let _ = proto::write_msg(&mut write_half, &snapshot);
        }
        Some("submit") => match Submission::from_msg(&msg) {
            Some(sub) => {
                if let Err(e) = register_submission(shared, write_half, sub) {
                    eprintln!("cmpsim serve: submission rejected: {e}");
                }
            }
            None => send_error(&mut write_half, "malformed submit message"),
        },
        other => send_error(&mut write_half, &format!("unknown request kind {other:?}")),
    }
}

fn send_error(stream: &mut TcpStream, message: &str) {
    let _ = proto::write_msg(
        stream,
        &JsonValue::object([
            ("kind", JsonValue::from("error")),
            ("message", JsonValue::from(message)),
        ]),
    );
}

/// Registers one submission: opens (and on resume, replays) its
/// journal, streams replayed cells, and enqueues the rest.
fn register_submission(
    shared: &Shared,
    mut stream: TcpStream,
    sub: Submission,
) -> std::io::Result<()> {
    shared.counters.submissions.fetch_add(1, Ordering::Relaxed);
    let run_id = sub
        .run_id
        .clone()
        .unwrap_or_else(|| fresh_run_id(&sub.experiment));
    let mut jc = JournalConfig::new(shared.cfg.journal_dir.clone(), run_id.clone());
    if sub.resume {
        jc = jc.resuming();
    }
    let (journal, replay) = match RunJournal::open(&jc) {
        Ok(opened) => opened,
        Err(e) => {
            send_error(&mut stream, &format!("cannot open journal: {e}"));
            return Err(e);
        }
    };

    // Partition: cells with a journalled terminal outcome replay
    // instantly; the rest execute (in-flight ones from a dead run are
    // the `recovered` count, mirroring the batch pool).
    let mut pending: VecDeque<usize> = VecDeque::new();
    let mut replayed = Vec::new();
    let mut recovered = 0usize;
    for (i, cell) in sub.cells.iter().enumerate() {
        match replay.completed.get(&cell.key) {
            Some(done) => replayed.push((i, done.clone())),
            None => {
                if replay.in_flight.contains(&cell.key) {
                    recovered += 1;
                }
                pending.push_back(i);
            }
        }
    }
    let total = sub.cells.len();
    journal.run_start(&run_id, total, replayed.len());
    shared
        .counters
        .cells_total
        .fetch_add(total as u64, Ordering::Relaxed);

    let workers = shared.cfg.workers.max(1);
    proto::write_msg(
        &mut stream,
        &JsonValue::object([
            ("kind", JsonValue::from("accepted")),
            ("run_id", JsonValue::from(run_id.as_str())),
            ("total", JsonValue::from(total)),
            ("workers", JsonValue::from(workers)),
            ("recovered", JsonValue::from(recovered)),
        ]),
    )?;

    let recorder = FlightRecorder::new();
    let service_lane = recorder.lane("service");
    let worker_lanes = (0..workers)
        .map(|i| recorder.lane(&format!("worker-{i}")))
        .collect();
    let trace_path = shared.cfg.journal_dir.join(format!("{run_id}.trace.jsonl"));
    service_lane.instant(
        "submit",
        "",
        0,
        vec![
            ("run_id".to_owned(), JsonValue::from(run_id.as_str())),
            ("cells".to_owned(), JsonValue::from(total)),
            ("replayed".to_owned(), JsonValue::from(replayed.len())),
        ],
    );
    let run = Arc::new(Run {
        id: run_id,
        experiment: sub.experiment,
        exe: sub.exe,
        cells: sub.cells,
        journal,
        client: Mutex::new(Some(stream)),
        remaining: AtomicUsize::new(pending.len()),
        ok: AtomicUsize::new(0),
        cached: AtomicUsize::new(0),
        failed: AtomicUsize::new(0),
        recorder,
        service_lane,
        worker_lanes,
        trace_path,
        workers,
    });

    for (seq, done) in replayed {
        shared.counters.replayed.fetch_add(1, Ordering::Relaxed);
        run.tally(&done.outcome);
        run.send_job_done(&run.cells[seq], &done.outcome, done.attempts, true);
    }

    if run.remaining.load(Ordering::Acquire) == 0 {
        finish_run(shared, &run);
    } else {
        let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
        sched.queue.push_back((run, pending));
        drop(sched);
        shared.work.notify_all();
    }
    Ok(())
}

/// One worker thread: pull a cell from the fair rotation, process it,
/// repeat until drained.
fn worker_loop(shared: &Shared, wid: usize) {
    loop {
        let popped = {
            let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some((run, mut cells)) = sched.queue.pop_front() {
                    let seq = cells.pop_front().expect("queued runs have cells");
                    let depth: usize =
                        cells.len() + sched.queue.iter().map(|(_, c)| c.len()).sum::<usize>();
                    if !cells.is_empty() {
                        sched.queue.push_back((Arc::clone(&run), cells));
                    }
                    break Some((run, seq, depth));
                }
                if sched.draining {
                    break None;
                }
                sched = shared.work.wait(sched).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some((run, seq, depth)) = popped else {
            return;
        };
        run.service_lane.counter("queue_depth", "", depth as f64);
        process_cell(shared, &run, seq, wid);
    }
}

/// Processes one cell end to end: journal, cache, dedup, supervised
/// execution with retries, result streaming.
fn process_cell(shared: &Shared, run: &Arc<Run>, seq: usize, wid: usize) {
    let cell = &run.cells[seq];
    let lane = &run.worker_lanes[wid];
    let mut span = lane.begin("cell", &cell.label, 0);
    span.arg("run", run.id.as_str());
    run.journal.job_start(seq, &cell.key, &cell.label);

    // Layer 1: the shared result cache (a finished cell from any
    // client, this boot or an earlier one).
    let key = JobKey::from_canonical(&cell.key);
    if let (Some(cache), Some(key)) = (shared.cache.as_ref(), key.as_ref()) {
        if let Some(payload) = cache.lookup(key) {
            shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            span.arg("outcome", "cached");
            finish_cell(shared, run, seq, &JobOutcome::Cached(payload), 0);
            return;
        }
    }

    // Layer 2: in-flight dedup — join an execution another run owns.
    {
        let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(waiters) = sched.inflight.get_mut(&cell.key) {
            waiters.push((Arc::clone(run), seq));
            shared.counters.dedup_joins.fetch_add(1, Ordering::Relaxed);
            span.arg("outcome", "dedup_join");
            return;
        }
        sched.inflight.insert(cell.key.clone(), Vec::new());
    }

    shared.counters.executed.fetch_add(1, Ordering::Relaxed);
    let outcome = execute_cell(shared, run, cell, lane, &mut span, key.as_ref());
    span.arg("outcome", outcome.0.kind());
    finish_cell(shared, run, seq, &outcome.0, outcome.1);

    // Resolve waiters: they receive the payload as a cache hit, or the
    // failure verbatim.
    let waiters = {
        let mut sched = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
        sched.inflight.remove(&cell.key).unwrap_or_default()
    };
    for (wrun, wseq) in waiters {
        let shared_outcome = match outcome.0.payload() {
            Some(v) => JobOutcome::Cached(v.clone()),
            None => outcome.0.clone(),
        };
        finish_cell(shared, &wrun, wseq, &shared_outcome, 0);
    }
}

/// The supervised retry loop for one owned cell. Returns the terminal
/// outcome and the attempts spent.
fn execute_cell(
    shared: &Shared,
    run: &Arc<Run>,
    cell: &CellSpec,
    lane: &Lane,
    span: &mut ftrace::OpenSpan,
    key: Option<&JobKey>,
) -> (JobOutcome, u32) {
    let policy = &shared.cfg.backoff;
    let retries = shared.cfg.retries;
    let mut attempt = 1u32;
    loop {
        // The chaos hook fires on the first matching dispatch only:
        // the child is SIGKILLed right after spawn, producing a
        // genuine crash that the retry loop re-shards.
        let sabotage = shared.cfg.chaos_kill_label.as_deref() == Some(cell.label.as_str())
            && shared.chaos_armed.swap(false, Ordering::SeqCst);
        let mut exec = lane.begin("execute", &cell.label, span.span_id());
        exec.arg("attempt", u64::from(attempt));
        let base_ts = run.recorder.now_ns();
        let res = if sabotage {
            run_program_sabotaged(&run.exe, &cell.args, shared.cfg.job_timeout, true)
        } else {
            run_program(&run.exe, &cell.args, shared.cfg.job_timeout, true)
        };
        if !res.trace.is_empty() || res.trace_dropped > 0 {
            run.recorder.add_dropped(res.trace_dropped);
            ftrace::graft(lane, res.trace, &cell.label, exec.span_id(), base_ts, &[]);
        }
        drop(exec);
        let (class, failure) = match res.attempt {
            ChildAttempt::Ok(payload) => {
                if let Some(cache) = shared.cache.as_ref() {
                    if let Some(key) = key {
                        if let Err(e) = cache.store(key, &payload) {
                            eprintln!("cmpsim serve: cache store failed: {e}");
                        }
                    }
                }
                return (JobOutcome::Ok(payload), attempt);
            }
            ChildAttempt::Err(e) => (
                FailureClass::Structured,
                JobOutcome::Errored {
                    category: e.category,
                    error: e.message,
                },
            ),
            ChildAttempt::Crashed(msg) => {
                shared.counters.crashes.fetch_add(1, Ordering::Relaxed);
                lane.instant(
                    "worker_crash",
                    &cell.label,
                    span.span_id(),
                    vec![("attempt".to_owned(), JsonValue::from(u64::from(attempt)))],
                );
                (FailureClass::Crash, JobOutcome::Poisoned { error: msg })
            }
            ChildAttempt::Hung => (
                FailureClass::Hang,
                JobOutcome::TimedOut {
                    error: format!("job process exceeded its deadline ({attempt} attempts)"),
                },
            ),
        };
        match policy.next_delay(class, attempt, retries) {
            Some(delay) => {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                attempt += 1;
            }
            None => return (failure, attempt),
        }
    }
}

/// Journals, tallies, and streams one cell's terminal outcome; the
/// last cell closes out the run.
fn finish_cell(shared: &Shared, run: &Arc<Run>, seq: usize, outcome: &JobOutcome, attempts: u32) {
    let cell = &run.cells[seq];
    run.journal
        .job_done(seq, &cell.key, &cell.label, outcome, attempts);
    run.tally(outcome);
    run.send_job_done(cell, outcome, attempts, false);
    if run.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        finish_run(shared, run);
    }
}

/// Closes out a run: journal `run_end`, trace sidecar, the `run_end`
/// message, and the client socket.
fn finish_run(shared: &Shared, run: &Arc<Run>) {
    let (ok, cached, failed) = (
        run.ok.load(Ordering::Relaxed),
        run.cached.load(Ordering::Relaxed),
        run.failed.load(Ordering::Relaxed),
    );
    run.journal.run_end(ok, cached, failed);
    let events = run.recorder.drain_sorted();
    let lanes = run.recorder.lane_names();
    let meta: Vec<(String, JsonValue)> = vec![
        (
            "experiment".to_owned(),
            JsonValue::from(run.experiment.as_str()),
        ),
        ("run_id".to_owned(), JsonValue::from(run.id.as_str())),
        ("workers".to_owned(), JsonValue::from(run.workers)),
        ("service".to_owned(), JsonValue::Bool(true)),
    ];
    if let Err(e) = ftrace::write_jsonl(
        &run.trace_path,
        &meta,
        &lanes,
        &events,
        run.recorder.dropped(),
    ) {
        eprintln!(
            "cmpsim serve: cannot write {}: {e}",
            run.trace_path.display()
        );
    }
    run.send(&JsonValue::object([
        ("kind", JsonValue::from("run_end")),
        ("ok", JsonValue::from(ok)),
        ("cached", JsonValue::from(cached)),
        ("failed", JsonValue::from(failed)),
    ]));
    *run.client.lock().unwrap_or_else(|e| e.into_inner()) = None;
    shared
        .counters
        .runs_completed
        .fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cmpsim_service_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A fake "experiment binary": `/bin/echo` printing the marker
    /// line, so coordinator tests run without building cmpsim.
    #[cfg(unix)]
    fn echo_cell(seq: usize, tag: &str) -> CellSpec {
        CellSpec {
            seq,
            key: format!("experiment=echo;cell={tag}"),
            label: tag.to_owned(),
            args: vec![format!(
                "__cmpsim_result__ {{\"ok\":{{\"cell\":\"{tag}\"}}}}"
            )],
        }
    }

    #[cfg(unix)]
    fn echo_submission(run_id: Option<String>, resume: bool, tags: &[&str]) -> Submission {
        Submission {
            exe: PathBuf::from("/bin/echo"),
            experiment: "echo".to_owned(),
            run_id,
            resume,
            cells: tags
                .iter()
                .enumerate()
                .map(|(i, t)| echo_cell(i, t))
                .collect(),
        }
    }

    #[cfg(unix)]
    #[test]
    fn coordinator_runs_a_submission_end_to_end() {
        let dir = temp_dir("e2e");
        let shutdown = ShutdownFlag::default();
        let coord = Coordinator::bind(ServeConfig {
            workers: 2,
            cache_dir: Some(dir.join("cache")),
            journal_dir: dir.join("journal"),
            shutdown: Some(shutdown.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = coord.local_addr().unwrap().to_string();
        std::thread::scope(|s| {
            s.spawn(|| coord.run());

            let sub = echo_submission(None, false, &["a", "b", "c"]);
            let out = client::submit(&addr, &sub).unwrap();
            assert_eq!(out.report.ok_count(), 3);
            assert_eq!(out.report.jobs[0].label, "a");
            assert_eq!(
                out.report.jobs[1]
                    .outcome
                    .payload()
                    .and_then(|p| p.get("cell"))
                    .and_then(JsonValue::as_str),
                Some("b")
            );

            // Same cells again: all served from the shared cache.
            let again = client::submit(&addr, &sub).unwrap();
            assert_eq!(again.report.cached_count(), 3);

            // Resuming the finished run replays it from the journal.
            let resumed = client::submit(
                &addr,
                &echo_submission(Some(out.run_id.clone()), true, &["a", "b", "c"]),
            )
            .unwrap();
            assert_eq!(resumed.report.replayed_count(), 3);
            assert_eq!(resumed.report.recovered, 0);

            let counters = client::status(&addr).unwrap();
            assert_eq!(
                counters.get("executed").and_then(JsonValue::as_u64),
                Some(3),
                "distinct cells execute exactly once: {}",
                counters.to_json()
            );
            assert_eq!(
                counters.get("replayed").and_then(JsonValue::as_u64),
                Some(3)
            );

            // The run left report-able artifacts behind.
            assert!(dir
                .join("journal")
                .join(format!("{}.jsonl", out.run_id))
                .exists());
            assert!(dir
                .join("journal")
                .join(format!("{}.trace.jsonl", out.run_id))
                .exists());

            shutdown.request();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn crashing_cell_is_quarantined_not_fatal() {
        let dir = temp_dir("crash");
        let shutdown = ShutdownFlag::default();
        let coord = Coordinator::bind(ServeConfig {
            workers: 1,
            journal_dir: dir.join("journal"),
            backoff: BackoffPolicy::immediate(),
            shutdown: Some(shutdown.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = coord.local_addr().unwrap().to_string();
        std::thread::scope(|s| {
            s.spawn(|| coord.run());
            // `/bin/echo` without a marker line: dies without reporting
            // → crash → retried → poisoned. A healthy neighbour is
            // unaffected.
            let mut sub = echo_submission(None, false, &["healthy"]);
            sub.cells.push(CellSpec {
                seq: 1,
                key: "experiment=echo;cell=bad".to_owned(),
                label: "bad".to_owned(),
                args: vec!["no marker here".to_owned()],
            });
            let out = client::submit(&addr, &sub).unwrap();
            assert_eq!(out.report.ok_count(), 1);
            assert_eq!(out.report.poisoned_count(), 1);
            assert_eq!(
                out.report.jobs[1].attempts, 2,
                "one retry before quarantine"
            );
            shutdown.request();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
