//! The wire protocol: newline-delimited JSON messages framed by the
//! length+FNV-1a record codec.
//!
//! Every message is one `\n`-terminated line holding a sealed record
//! whose payload lives under `msg` — the same integrity framing the
//! result cache (`result`) and run journal (`record`) use, so all
//! three formats stay mutually debuggable and a torn or corrupted line
//! is detected instead of trusted:
//!
//! ```json
//! {"len":123,"fnv":"90b1c5f6b1e3d2a4","msg":{"kind":"job_done",...}}
//! ```
//!
//! Client → coordinator:
//!
//! * `submit` — an executable path, experiment name, run identity
//!   (fresh or `--resume`), and the cell list ([`Submission`]),
//! * `status` — ask for the coordinator's lifetime counters.
//!
//! Coordinator → client:
//!
//! * `accepted` — the run id (what `--resume` takes), cell total,
//!   worker-fleet size, and recovered in-flight count,
//! * `job_done` — one cell's terminal outcome, streamed as it lands
//!   (the journal record, payload included; order is arbitrary — the
//!   client reassembles by `seq`),
//! * `run_end` — the sweep finished,
//! * `counters` — the `status` reply,
//! * `error` — the request was rejected; the connection closes.

use cmpsim_runner::record;
use cmpsim_telemetry::JsonValue;
use std::io::{BufRead, Write};
use std::path::PathBuf;

/// The field a sealed wire message stores its payload under.
pub const MSG_FIELD: &str = "msg";

fn invalid(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// Writes one framed message line and flushes it.
///
/// # Errors
///
/// Propagates socket write errors; the peer is then gone.
pub fn write_msg(w: &mut impl Write, body: &JsonValue) -> std::io::Result<()> {
    let doc = record::seal(Vec::new(), MSG_FIELD, body);
    let mut line = doc.to_json();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads the next framed message line; `Ok(None)` is a clean EOF.
///
/// # Errors
///
/// Socket read errors, and `InvalidData` for a line that does not
/// parse or fails its checksum — a peer speaking something else.
pub fn read_msg(r: &mut impl BufRead) -> std::io::Result<Option<JsonValue>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let doc = cmpsim_telemetry::parse(line.trim())
        .map_err(|e| invalid(format!("unparseable message: {e}")))?;
    match record::verify(&doc, MSG_FIELD) {
        Some(msg) => Ok(Some(msg)),
        None => Err(invalid("message failed checksum verification".to_owned())),
    }
}

/// One grid cell as submitted over the wire: its submission index, the
/// canonical cache key, the display label, and the argv a worker
/// process recomputes it with (after the executable path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Submission index — the client reassembles results by this.
    pub seq: usize,
    /// Canonical [`JobKey`](cmpsim_runner::JobKey) rendering; the
    /// coordinator rebuilds the structured key from it to address the
    /// shared result cache and to dedup in-flight work.
    pub key: String,
    /// Display label (progress, journal, failure summary).
    pub label: String,
    /// Argv after the program name, e.g.
    /// `["__run-job", "FIMI", "grid", "--cores", "8", "--no-cache"]`.
    pub args: Vec<String>,
}

impl CellSpec {
    /// The cell as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("seq", JsonValue::from(self.seq)),
            ("key", JsonValue::from(self.key.as_str())),
            ("label", JsonValue::from(self.label.as_str())),
            (
                "args",
                JsonValue::Array(
                    self.args
                        .iter()
                        .map(|a| JsonValue::from(a.as_str()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses [`to_json`](CellSpec::to_json)'s form back.
    pub fn from_json(doc: &JsonValue) -> Option<CellSpec> {
        Some(CellSpec {
            seq: doc.get("seq")?.as_u64()? as usize,
            key: doc.get("key")?.as_str()?.to_owned(),
            label: doc.get("label")?.as_str()?.to_owned(),
            args: doc
                .get("args")?
                .as_array()?
                .iter()
                .map(|a| a.as_str().map(str::to_owned))
                .collect::<Option<_>>()?,
        })
    }
}

/// One grid submission: which executable recomputes the cells, under
/// which run identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// The client's executable; workers re-exec it per cell with the
    /// cell's argv (the supervisor marker protocol is binary-agnostic,
    /// so any figure binary can be a service client).
    pub exe: PathBuf,
    /// Experiment name — used when minting a fresh run id.
    pub experiment: String,
    /// Explicit run id (`--run-id`, or the id being resumed); `None`
    /// lets the coordinator mint a collision-proof one.
    pub run_id: Option<String>,
    /// Replay the server-side journal for `run_id` first: completed
    /// cells stream back instantly as `replayed`, in-flight ones
    /// re-execute.
    pub resume: bool,
    /// The cells, in the client's submission order.
    pub cells: Vec<CellSpec>,
}

impl Submission {
    /// The full `submit` message.
    pub fn to_msg(&self) -> JsonValue {
        let mut fields = vec![
            ("kind".to_owned(), JsonValue::from("submit")),
            (
                "exe".to_owned(),
                JsonValue::from(self.exe.to_string_lossy().into_owned()),
            ),
            (
                "experiment".to_owned(),
                JsonValue::from(self.experiment.as_str()),
            ),
            ("resume".to_owned(), JsonValue::Bool(self.resume)),
            (
                "cells".to_owned(),
                JsonValue::Array(self.cells.iter().map(CellSpec::to_json).collect()),
            ),
        ];
        if let Some(id) = &self.run_id {
            fields.push(("run_id".to_owned(), JsonValue::from(id.as_str())));
        }
        JsonValue::Object(fields)
    }

    /// Parses a `submit` message body back.
    pub fn from_msg(doc: &JsonValue) -> Option<Submission> {
        Some(Submission {
            exe: PathBuf::from(doc.get("exe")?.as_str()?),
            experiment: doc.get("experiment")?.as_str()?.to_owned(),
            run_id: doc
                .get("run_id")
                .and_then(JsonValue::as_str)
                .map(str::to_owned),
            resume: doc
                .get("resume")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            cells: doc
                .get("cells")?
                .as_array()?
                .iter()
                .map(CellSpec::from_json)
                .collect::<Option<_>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn sample() -> Submission {
        Submission {
            exe: PathBuf::from("/usr/bin/cmpsim"),
            experiment: "cmpsim_grid".to_owned(),
            run_id: Some("cmpsim_grid-1-2-3".to_owned()),
            resume: true,
            cells: vec![
                CellSpec {
                    seq: 0,
                    key: "experiment=cmpsim_grid;workload=FIMI".to_owned(),
                    label: "FIMI".to_owned(),
                    args: vec!["__run-job".into(), "FIMI".into(), "grid".into()],
                },
                CellSpec {
                    seq: 1,
                    key: "experiment=cmpsim_grid;workload=MDS".to_owned(),
                    label: "MDS".to_owned(),
                    args: vec!["__run-job".into(), "MDS".into(), "grid".into()],
                },
            ],
        }
    }

    #[test]
    fn submission_round_trips_through_the_framed_codec() {
        let sub = sample();
        let mut wire = Vec::new();
        write_msg(&mut wire, &sub.to_msg()).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let msg = read_msg(&mut reader).unwrap().expect("one message");
        assert_eq!(msg.get("kind").and_then(JsonValue::as_str), Some("submit"));
        assert_eq!(Submission::from_msg(&msg), Some(sub));
        // EOF after the single message.
        assert!(read_msg(&mut reader).unwrap().is_none());
    }

    #[test]
    fn tampered_frame_is_rejected() {
        let mut wire = Vec::new();
        write_msg(&mut wire, &sample().to_msg()).unwrap();
        let tampered = String::from_utf8(wire).unwrap().replace("FIMI", "FAKE");
        let mut reader = BufReader::new(tampered.as_bytes());
        let err = read_msg(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn fresh_submission_omits_run_id() {
        let sub = Submission {
            run_id: None,
            resume: false,
            ..sample()
        };
        let msg = sub.to_msg();
        assert!(msg.get("run_id").is_none());
        assert_eq!(Submission::from_msg(&msg), Some(sub));
    }
}
