//! The wire protocol: newline-delimited JSON messages framed by the
//! length+FNV-1a record codec.
//!
//! Every message is one `\n`-terminated line holding a sealed record
//! whose payload lives under `msg` — the same integrity framing the
//! result cache (`result`) and run journal (`record`) use, so all
//! three formats stay mutually debuggable and a torn or corrupted line
//! is detected instead of trusted:
//!
//! ```json
//! {"len":123,"fnv":"90b1c5f6b1e3d2a4","msg":{"kind":"job_done",...}}
//! ```
//!
//! Client → coordinator:
//!
//! * `submit` — an executable path, experiment name, run identity
//!   (fresh or `--resume`), and the cell list ([`Submission`]),
//! * `attach` — re-join a live (or just-finished) run's record stream
//!   after a disconnect ([`Attach`]): the run id plus the highest
//!   record-stream sequence (`rseq`) already received; the coordinator
//!   replays every `job_done` past it from the journal, then streams
//!   live,
//! * `status` — ask for the coordinator's lifetime counters.
//!
//! Coordinator → client:
//!
//! * `accepted` — the run id (what `--resume` takes), cell total,
//!   worker-fleet size, and recovered in-flight count,
//! * `attached` — the `attach` reply: run id and how many records the
//!   journal replay is about to deliver,
//! * `job_done` — one cell's terminal outcome, streamed as it lands
//!   (the journal record, payload included; completion order is
//!   arbitrary — the client reassembles by `seq` — but the stream is
//!   totally ordered by `rseq`, which is what makes `attach` exact),
//! * `run_end` — the sweep finished,
//! * `counters` — the `status` reply,
//! * `ping` — idle keepalive while cells compute (clients skip it),
//! * `error` — the request was rejected; the connection closes.
//!
//! Agent → coordinator (a remote worker dialing in):
//!
//! * `agent_hello` — the versioned handshake ([`AgentHello`]):
//!   protocol version, the FNV-1a fingerprint of the agent's own
//!   executable, crate version, and slot count. A mismatch gets a
//!   structured `error` naming both sides, never a mid-stream decode
//!   failure,
//! * `cell_result` — one dispatched cell's attempt outcome
//!   ([`attempt_to_json`]), tagged with its lease id,
//! * `heartbeat` — liveness plus the lease ids the agent still holds;
//!   renews those leases.
//!
//! Coordinator → agent:
//!
//! * `agent_welcome` — the assigned agent id and the heartbeat
//!   interval the coordinator expects,
//! * `dispatch` — one leased cell ([`Dispatch`]): lease id,
//!   executable, cache key, label, argv, and timeout,
//! * `heartbeat_ack` — heartbeat reply (the agent's liveness check on
//!   the coordinator),
//! * `drain` — the coordinator is shutting down; finish nothing new
//!   and exit cleanly.

use cmpsim_runner::record;
use cmpsim_runner::{ChildAttempt, JobError};
use cmpsim_telemetry::JsonValue;
use std::io::{BufRead, Read, Write};
use std::path::PathBuf;

/// The field a sealed wire message stores its payload under.
pub const MSG_FIELD: &str = "msg";

/// The wire protocol version. Bumped whenever a message shape changes
/// incompatibly; both the submit path and the agent handshake carry it
/// so a mixed-version fleet fails fast with a structured error instead
/// of a decode failure mid-sweep. v3 added `attach`/`attached` and the
/// `rseq` field on streamed `job_done` records.
pub const PROTOCOL_VERSION: u64 = 3;

/// Upper bound on one framed line. A frame that grows past this without
/// a newline is a peer speaking something else (or garbage), not a
/// legitimate message.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

fn invalid(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// Writes one framed message line and flushes it.
///
/// # Errors
///
/// Propagates socket write errors; the peer is then gone.
pub fn write_msg(w: &mut impl Write, body: &JsonValue) -> std::io::Result<()> {
    let doc = record::seal(Vec::new(), MSG_FIELD, body);
    let mut line = doc.to_json();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads the next framed message line; `Ok(None)` is a clean EOF.
///
/// # Errors
///
/// Socket read errors, and `InvalidData` for a line that does not
/// parse or fails its checksum — a peer speaking something else.
pub fn read_msg(r: &mut impl BufRead) -> std::io::Result<Option<JsonValue>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let doc = cmpsim_telemetry::parse(line.trim())
        .map_err(|e| invalid(format!("unparseable message: {e}")))?;
    match record::verify(&doc, MSG_FIELD) {
        Some(msg) => Ok(Some(msg)),
        None => Err(invalid("message failed checksum verification".to_owned())),
    }
}

/// An incremental message reader that survives read timeouts.
///
/// `BufReader::read_line` discards partially-read bytes when the
/// underlying socket returns `WouldBlock`/`TimedOut`, which makes
/// read deadlines unusable mid-stream. This reader keeps its own
/// buffer: a timeout surfaces as the error it is, the partial frame
/// stays buffered, and the caller simply calls [`next`](Self::next)
/// again after deciding the peer is still live.
pub struct MsgReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for a newline (no need to rescan
    /// them when another chunk arrives).
    searched: usize,
}

impl<R: Read> MsgReader<R> {
    /// Wraps a byte stream (typically a `TcpStream` with a read
    /// deadline set).
    pub fn new(inner: R) -> MsgReader<R> {
        MsgReader {
            inner,
            buf: Vec::new(),
            searched: 0,
        }
    }

    /// Reads the next framed message. `Ok(None)` is a clean EOF at a
    /// frame boundary.
    ///
    /// # Errors
    ///
    /// * `WouldBlock`/`TimedOut` — the socket deadline expired; the
    ///   partial frame is preserved and a retry resumes where it left
    ///   off,
    /// * `InvalidData` — a line that fails to parse or verify, a frame
    ///   over [`MAX_FRAME_BYTES`], or an EOF mid-frame,
    /// * other socket errors, verbatim.
    // Deliberately mirrors `Iterator::next` naming; the io::Result
    // return type keeps it off the trait.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> std::io::Result<Option<JsonValue>> {
        loop {
            if let Some(pos) = self.buf[self.searched..].iter().position(|&b| b == b'\n') {
                let end = self.searched + pos;
                let line: Vec<u8> = self.buf.drain(..=end).collect();
                self.searched = 0;
                let text = std::str::from_utf8(&line[..line.len() - 1])
                    .map_err(|e| invalid(format!("message is not UTF-8: {e}")))?;
                if text.trim().is_empty() {
                    continue;
                }
                let doc = cmpsim_telemetry::parse(text.trim())
                    .map_err(|e| invalid(format!("unparseable message: {e}")))?;
                return match record::verify(&doc, MSG_FIELD) {
                    Some(msg) => Ok(Some(msg)),
                    None => Err(invalid("message failed checksum verification".to_owned())),
                };
            }
            self.searched = self.buf.len();
            if self.buf.len() > MAX_FRAME_BYTES {
                return Err(invalid(format!(
                    "frame exceeds {MAX_FRAME_BYTES} bytes without a newline"
                )));
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(invalid("connection closed mid-frame".to_owned()))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// The agent side of the versioned handshake: everything the
/// coordinator needs to decide this process may compute cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentHello {
    /// [`PROTOCOL_VERSION`] as the agent speaks it.
    pub protocol: u64,
    /// FNV-1a fingerprint of the agent's own executable
    /// ([`cmpsim_runner::file_fingerprint`]). Cells are computed by
    /// re-exec'ing this binary, so fleet members must run identical
    /// builds or results would silently diverge.
    pub binary: String,
    /// Human-readable crate version, for the mismatch error message.
    pub version: String,
    /// Concurrent cells this agent will run.
    pub slots: usize,
    /// The agent's OS pid (diagnostics in `cmpsim status`).
    pub pid: u32,
}

impl AgentHello {
    /// The full `agent_hello` message.
    pub fn to_msg(&self) -> JsonValue {
        JsonValue::object([
            ("kind", JsonValue::from("agent_hello")),
            ("protocol", JsonValue::from(self.protocol)),
            ("binary", JsonValue::from(self.binary.as_str())),
            ("version", JsonValue::from(self.version.as_str())),
            ("slots", JsonValue::from(self.slots)),
            ("pid", JsonValue::from(u64::from(self.pid))),
        ])
    }

    /// Parses an `agent_hello` body back.
    pub fn from_msg(doc: &JsonValue) -> Option<AgentHello> {
        Some(AgentHello {
            protocol: doc.get("protocol")?.as_u64()?,
            binary: doc.get("binary")?.as_str()?.to_owned(),
            version: doc.get("version")?.as_str()?.to_owned(),
            slots: doc.get("slots")?.as_u64()? as usize,
            pid: doc.get("pid")?.as_u64()? as u32,
        })
    }
}

/// One leased cell, coordinator → agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dispatch {
    /// The lease id: every `cell_result` and `heartbeat` names it, and
    /// the coordinator reclaims it if this agent goes quiet.
    pub lease: u64,
    /// The executable that recomputes the cell (the *submitting
    /// client's* binary path; see [`Submission::exe`]).
    pub exe: PathBuf,
    /// Canonical cache key (diagnostics; the coordinator owns cache
    /// and journal, the agent only computes).
    pub key: String,
    /// Display label.
    pub label: String,
    /// Argv after the program name.
    pub args: Vec<String>,
    /// Per-attempt deadline, if the coordinator enforces one.
    pub timeout_ms: Option<u64>,
}

impl Dispatch {
    /// The full `dispatch` message.
    pub fn to_msg(&self) -> JsonValue {
        let mut fields = vec![
            ("kind".to_owned(), JsonValue::from("dispatch")),
            ("lease".to_owned(), JsonValue::from(self.lease)),
            (
                "exe".to_owned(),
                JsonValue::from(self.exe.to_string_lossy().into_owned()),
            ),
            ("key".to_owned(), JsonValue::from(self.key.as_str())),
            ("label".to_owned(), JsonValue::from(self.label.as_str())),
            (
                "args".to_owned(),
                JsonValue::Array(
                    self.args
                        .iter()
                        .map(|a| JsonValue::from(a.as_str()))
                        .collect(),
                ),
            ),
        ];
        if let Some(ms) = self.timeout_ms {
            fields.push(("timeout_ms".to_owned(), JsonValue::from(ms)));
        }
        JsonValue::Object(fields)
    }

    /// Parses a `dispatch` body back.
    pub fn from_msg(doc: &JsonValue) -> Option<Dispatch> {
        Some(Dispatch {
            lease: doc.get("lease")?.as_u64()?,
            exe: PathBuf::from(doc.get("exe")?.as_str()?),
            key: doc.get("key")?.as_str()?.to_owned(),
            label: doc.get("label")?.as_str()?.to_owned(),
            args: doc
                .get("args")?
                .as_array()?
                .iter()
                .map(|a| a.as_str().map(str::to_owned))
                .collect::<Option<_>>()?,
            timeout_ms: doc.get("timeout_ms").and_then(JsonValue::as_u64),
        })
    }
}

/// Serializes one [`ChildAttempt`] for a `cell_result` message.
pub fn attempt_to_json(attempt: &ChildAttempt) -> JsonValue {
    match attempt {
        ChildAttempt::Ok(payload) => JsonValue::object([
            ("kind", JsonValue::from("ok")),
            ("payload", payload.clone()),
        ]),
        ChildAttempt::Err(e) => JsonValue::object([
            ("kind", JsonValue::from("err")),
            ("category", JsonValue::from(e.category.as_str())),
            ("message", JsonValue::from(e.message.as_str())),
        ]),
        ChildAttempt::Crashed(msg) => JsonValue::object([
            ("kind", JsonValue::from("crashed")),
            ("message", JsonValue::from(msg.as_str())),
        ]),
        ChildAttempt::Hung => JsonValue::object([("kind", JsonValue::from("hung"))]),
    }
}

/// Parses [`attempt_to_json`]'s form back.
pub fn attempt_from_json(doc: &JsonValue) -> Option<ChildAttempt> {
    match doc.get("kind")?.as_str()? {
        "ok" => Some(ChildAttempt::Ok(doc.get("payload")?.clone())),
        "err" => Some(ChildAttempt::Err(JobError::new(
            doc.get("category")?.as_str()?,
            doc.get("message")?.as_str()?,
        ))),
        "crashed" => Some(ChildAttempt::Crashed(
            doc.get("message")?.as_str()?.to_owned(),
        )),
        "hung" => Some(ChildAttempt::Hung),
        _ => None,
    }
}

/// One grid cell as submitted over the wire: its submission index, the
/// canonical cache key, the display label, and the argv a worker
/// process recomputes it with (after the executable path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Submission index — the client reassembles results by this.
    pub seq: usize,
    /// Canonical [`JobKey`](cmpsim_runner::JobKey) rendering; the
    /// coordinator rebuilds the structured key from it to address the
    /// shared result cache and to dedup in-flight work.
    pub key: String,
    /// Display label (progress, journal, failure summary).
    pub label: String,
    /// Argv after the program name, e.g.
    /// `["__run-job", "FIMI", "grid", "--cores", "8", "--no-cache"]`.
    pub args: Vec<String>,
}

impl CellSpec {
    /// The cell as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("seq", JsonValue::from(self.seq)),
            ("key", JsonValue::from(self.key.as_str())),
            ("label", JsonValue::from(self.label.as_str())),
            (
                "args",
                JsonValue::Array(
                    self.args
                        .iter()
                        .map(|a| JsonValue::from(a.as_str()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses [`to_json`](CellSpec::to_json)'s form back.
    pub fn from_json(doc: &JsonValue) -> Option<CellSpec> {
        Some(CellSpec {
            seq: doc.get("seq")?.as_u64()? as usize,
            key: doc.get("key")?.as_str()?.to_owned(),
            label: doc.get("label")?.as_str()?.to_owned(),
            args: doc
                .get("args")?
                .as_array()?
                .iter()
                .map(|a| a.as_str().map(str::to_owned))
                .collect::<Option<_>>()?,
        })
    }
}

/// One grid submission: which executable recomputes the cells, under
/// which run identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// The client's executable; workers re-exec it per cell with the
    /// cell's argv (the supervisor marker protocol is binary-agnostic,
    /// so any figure binary can be a service client).
    pub exe: PathBuf,
    /// Experiment name — used when minting a fresh run id.
    pub experiment: String,
    /// Explicit run id (`--run-id`, or the id being resumed); `None`
    /// lets the coordinator mint a collision-proof one.
    pub run_id: Option<String>,
    /// Replay the server-side journal for `run_id` first: completed
    /// cells stream back instantly as `replayed`, in-flight ones
    /// re-execute.
    pub resume: bool,
    /// The cells, in the client's submission order.
    pub cells: Vec<CellSpec>,
}

impl Submission {
    /// The full `submit` message.
    pub fn to_msg(&self) -> JsonValue {
        let mut fields = vec![
            ("kind".to_owned(), JsonValue::from("submit")),
            ("protocol".to_owned(), JsonValue::from(PROTOCOL_VERSION)),
            (
                "exe".to_owned(),
                JsonValue::from(self.exe.to_string_lossy().into_owned()),
            ),
            (
                "experiment".to_owned(),
                JsonValue::from(self.experiment.as_str()),
            ),
            ("resume".to_owned(), JsonValue::Bool(self.resume)),
            (
                "cells".to_owned(),
                JsonValue::Array(self.cells.iter().map(CellSpec::to_json).collect()),
            ),
        ];
        if let Some(id) = &self.run_id {
            fields.push(("run_id".to_owned(), JsonValue::from(id.as_str())));
        }
        JsonValue::Object(fields)
    }

    /// Parses a `submit` message body back.
    pub fn from_msg(doc: &JsonValue) -> Option<Submission> {
        Some(Submission {
            exe: PathBuf::from(doc.get("exe")?.as_str()?),
            experiment: doc.get("experiment")?.as_str()?.to_owned(),
            run_id: doc
                .get("run_id")
                .and_then(JsonValue::as_str)
                .map(str::to_owned),
            resume: doc
                .get("resume")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            cells: doc
                .get("cells")?
                .as_array()?
                .iter()
                .map(CellSpec::from_json)
                .collect::<Option<_>>()?,
        })
    }
}

/// A client's request to re-join a run's record stream after a
/// disconnect (its own, or a coordinator restart).
///
/// `after_seq` is the highest `rseq` the client has already received
/// (`0` for none): the coordinator replays every journalled `job_done`
/// with a higher `rseq` — in rseq order — and then, if the run is still
/// live, streams new records as they land. The reply is `attached`,
/// followed by the replay, followed by the live stream and `run_end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attach {
    /// The run to re-join — the id `accepted` handed out.
    pub run_id: String,
    /// Highest record-stream sequence already received; the replay
    /// starts strictly after it.
    pub after_seq: u64,
}

impl Attach {
    /// The full `attach` message.
    pub fn to_msg(&self) -> JsonValue {
        JsonValue::object([
            ("kind", JsonValue::from("attach")),
            ("protocol", JsonValue::from(PROTOCOL_VERSION)),
            ("run_id", JsonValue::from(self.run_id.as_str())),
            ("after_seq", JsonValue::from(self.after_seq)),
        ])
    }

    /// Parses an `attach` message body back.
    pub fn from_msg(doc: &JsonValue) -> Option<Attach> {
        Some(Attach {
            run_id: doc.get("run_id")?.as_str()?.to_owned(),
            after_seq: doc.get("after_seq")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn sample() -> Submission {
        Submission {
            exe: PathBuf::from("/usr/bin/cmpsim"),
            experiment: "cmpsim_grid".to_owned(),
            run_id: Some("cmpsim_grid-1-2-3".to_owned()),
            resume: true,
            cells: vec![
                CellSpec {
                    seq: 0,
                    key: "experiment=cmpsim_grid;workload=FIMI".to_owned(),
                    label: "FIMI".to_owned(),
                    args: vec!["__run-job".into(), "FIMI".into(), "grid".into()],
                },
                CellSpec {
                    seq: 1,
                    key: "experiment=cmpsim_grid;workload=MDS".to_owned(),
                    label: "MDS".to_owned(),
                    args: vec!["__run-job".into(), "MDS".into(), "grid".into()],
                },
            ],
        }
    }

    #[test]
    fn submission_round_trips_through_the_framed_codec() {
        let sub = sample();
        let mut wire = Vec::new();
        write_msg(&mut wire, &sub.to_msg()).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let msg = read_msg(&mut reader).unwrap().expect("one message");
        assert_eq!(msg.get("kind").and_then(JsonValue::as_str), Some("submit"));
        assert_eq!(Submission::from_msg(&msg), Some(sub));
        // EOF after the single message.
        assert!(read_msg(&mut reader).unwrap().is_none());
    }

    #[test]
    fn tampered_frame_is_rejected() {
        let mut wire = Vec::new();
        write_msg(&mut wire, &sample().to_msg()).unwrap();
        let tampered = String::from_utf8(wire).unwrap().replace("FIMI", "FAKE");
        let mut reader = BufReader::new(tampered.as_bytes());
        let err = read_msg(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn fresh_submission_omits_run_id() {
        let sub = Submission {
            run_id: None,
            resume: false,
            ..sample()
        };
        let msg = sub.to_msg();
        assert!(msg.get("run_id").is_none());
        assert_eq!(Submission::from_msg(&msg), Some(sub));
    }

    #[test]
    fn submission_carries_the_protocol_version() {
        let msg = sample().to_msg();
        assert_eq!(
            msg.get("protocol").and_then(JsonValue::as_u64),
            Some(PROTOCOL_VERSION)
        );
    }

    #[test]
    fn agent_hello_and_dispatch_round_trip() {
        let hello = AgentHello {
            protocol: PROTOCOL_VERSION,
            binary: "deadbeefcafef00d".to_owned(),
            version: "0.1.0".to_owned(),
            slots: 4,
            pid: 4242,
        };
        let msg = hello.to_msg();
        assert_eq!(
            msg.get("kind").and_then(JsonValue::as_str),
            Some("agent_hello")
        );
        assert_eq!(AgentHello::from_msg(&msg), Some(hello));

        let dispatch = Dispatch {
            lease: 7,
            exe: PathBuf::from("/usr/bin/cmpsim"),
            key: "experiment=grid;workload=FIMI".to_owned(),
            label: "FIMI".to_owned(),
            args: vec!["__run-job".into(), "FIMI".into()],
            timeout_ms: Some(30_000),
        };
        assert_eq!(Dispatch::from_msg(&dispatch.to_msg()), Some(dispatch));
        let untimed = Dispatch {
            timeout_ms: None,
            ..Dispatch::from_msg(
                &Dispatch {
                    lease: 8,
                    exe: PathBuf::from("/x"),
                    key: "k=v".to_owned(),
                    label: "L".to_owned(),
                    args: vec![],
                    timeout_ms: None,
                }
                .to_msg(),
            )
            .unwrap()
        };
        assert_eq!(untimed.timeout_ms, None);
    }

    #[test]
    fn attach_round_trips_and_carries_the_protocol_version() {
        let attach = Attach {
            run_id: "echo-1-2-deadbeef-0".to_owned(),
            after_seq: 17,
        };
        let mut wire = Vec::new();
        write_msg(&mut wire, &attach.to_msg()).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let msg = read_msg(&mut reader).unwrap().expect("one message");
        assert_eq!(msg.get("kind").and_then(JsonValue::as_str), Some("attach"));
        assert_eq!(
            msg.get("protocol").and_then(JsonValue::as_u64),
            Some(PROTOCOL_VERSION)
        );
        assert_eq!(Attach::from_msg(&msg), Some(attach));
        // Missing fields parse to None, never panic.
        assert_eq!(
            Attach::from_msg(&JsonValue::object([("kind", JsonValue::from("attach"))])),
            None
        );
    }

    #[test]
    fn attempt_outcomes_round_trip() {
        use cmpsim_runner::{ChildAttempt, JobError};
        let cases = [
            ChildAttempt::Ok(JsonValue::object([("mpki", JsonValue::F64(1.5))])),
            ChildAttempt::Err(JobError::new("invariant", "llc drift")),
            ChildAttempt::Crashed("signal: 9 (SIGKILL)".to_owned()),
            ChildAttempt::Hung,
        ];
        for case in &cases {
            let back = attempt_from_json(&attempt_to_json(case)).expect("round trip");
            assert_eq!(
                attempt_to_json(&back).to_json(),
                attempt_to_json(case).to_json()
            );
        }
        assert!(
            attempt_from_json(&JsonValue::object([("kind", JsonValue::from("martian"))])).is_none()
        );
    }

    #[test]
    fn msg_reader_reassembles_split_frames() {
        // A reader fed one byte at a time must still produce every
        // message intact — this is the property that makes read
        // deadlines safe (a timeout mid-frame loses nothing).
        struct OneByte<'a>(&'a [u8]);
        impl std::io::Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.0.split_first() {
                    Some((&b, rest)) => {
                        self.0 = rest;
                        buf[0] = b;
                        Ok(1)
                    }
                    None => Ok(0),
                }
            }
        }
        let mut wire = Vec::new();
        write_msg(&mut wire, &sample().to_msg()).unwrap();
        write_msg(&mut wire, &JsonValue::object([("kind", "ping".into())])).unwrap();
        let mut reader = MsgReader::new(OneByte(&wire));
        let first = reader.next().unwrap().expect("first message");
        assert_eq!(Submission::from_msg(&first), Some(sample()));
        let second = reader.next().unwrap().expect("second message");
        assert_eq!(second.get("kind").and_then(JsonValue::as_str), Some("ping"));
        assert!(reader.next().unwrap().is_none());
    }

    #[test]
    fn msg_reader_flags_eof_mid_frame() {
        let mut wire = Vec::new();
        write_msg(&mut wire, &sample().to_msg()).unwrap();
        wire.pop(); // lose the trailing newline: a torn final frame
        let mut reader = MsgReader::new(wire.as_slice());
        let err = reader.next().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
