//! The remote worker agent: dial a coordinator, pull cells, run them
//! under the process supervisor, stream results back.
//!
//! One agent is one process on one host. It registers over a versioned
//! handshake — protocol version, FNV-1a fingerprint of its own
//! executable, and a slot count — and the coordinator rejects any
//! mismatch up front with a structured error naming both sides, so a
//! stale build can never silently compute cells with different code.
//!
//! After the welcome, the agent runs two loops:
//!
//! * a **heartbeat thread** sends `heartbeat` messages on the
//!   coordinator-assigned cadence, each listing the lease ids the
//!   agent currently holds — that single message renews every lease,
//!   so a slow cell is indistinguishable from a healthy one and only
//!   real silence (crash, partition, SIGKILL) triggers a reclaim,
//! * the **main reader** takes `dispatch` messages and spawns one job
//!   thread per cell (up to `slots` — the coordinator never
//!   over-dispatches, it decrements its free-slot count per lease).
//!   Each job runs the dispatched executable under
//!   [`cmpsim_runner::run_program`] — the same crash/hang supervision
//!   as a local worker — and ships the raw [`ChildAttempt`] back;
//!   retry policy, backoff, and poison escalation stay entirely
//!   coordinator-side.
//!
//! On `drain` the agent stops accepting work, finishes in-flight
//! cells, and exits cleanly. On a lost coordinator (EOF or three
//! silent heartbeat intervals) it finishes its in-flight cells, stashes
//! any results it could not ship, and **redials** on a capped
//! exponential backoff (250 ms doubling to 10 s) — the fleet needs no
//! operator action across a coordinator restart. After the new
//! welcome it re-reports the stashed results; their old-incarnation
//! lease ids miss the new lease table, so the coordinator settles them
//! as `stale_results` while its own journal replay / re-execution
//! converges on exactly one `job_done` per cell. Only a *structured
//! rejection* (protocol or binary mismatch) is fatal: redialing cannot
//! fix a wrong build. `redial: false` restores the old
//! exit-on-first-loss behavior for scripts that manage the fleet
//! themselves.

use crate::proto::{self, AgentHello, Dispatch, MsgReader, PROTOCOL_VERSION};
use cmpsim_runner::{file_fingerprint, run_program, ChildAttempt, ShutdownFlag};
use cmpsim_telemetry::JsonValue;
use std::collections::HashSet;
use std::net::{TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Write deadline on the agent socket.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Read deadline while waiting for the welcome.
const HANDSHAKE_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Dial timeout.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// First redial delay after a lost coordinator; doubles per failed
/// attempt up to [`REDIAL_CAP`].
const REDIAL_BASE: Duration = Duration::from_millis(250);

/// Ceiling on the redial backoff.
const REDIAL_CAP: Duration = Duration::from_secs(10);

/// How an agent runs.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Coordinator address (`host:port`).
    pub connect: String,
    /// Concurrent cell slots; `0` means one per available CPU.
    pub slots: usize,
    /// Chaos hook: abort the whole agent process the first time a cell
    /// with this label is dispatched to it — the CI smoke test's
    /// simulated node loss.
    pub chaos_exit_label: Option<String>,
    /// Graceful-shutdown flag (SIGINT/SIGTERM).
    pub shutdown: Option<ShutdownFlag>,
    /// Redial a lost coordinator (capped exponential backoff) instead
    /// of exiting with an error. Structured rejections — version or
    /// binary mismatch — are always fatal regardless.
    pub redial: bool,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            connect: "127.0.0.1:0".to_owned(),
            slots: 0,
            chaos_exit_label: None,
            shutdown: None,
            redial: true,
        }
    }
}

/// What a finished agent session reports.
#[derive(Debug)]
pub struct AgentReport {
    /// The coordinator-assigned agent id.
    pub agent_id: u64,
    /// Cells this agent completed (any outcome).
    pub cells_done: u64,
}

/// Shared between the main reader, the heartbeat thread, and job
/// threads — one per dialed session.
struct AgentState {
    /// Lease ids currently held — the heartbeat renews exactly these.
    leases: Mutex<HashSet<u64>>,
    /// The socket's write half; results and heartbeats serialize here.
    writer: Mutex<TcpStream>,
    done: AtomicU64,
    stop: AtomicBool,
    /// Set when the reader declares the coordinator lost: in-flight
    /// jobs stash their results instead of writing to a dead socket.
    dead: AtomicBool,
    /// Results that could not be shipped — carried *across* sessions
    /// and re-reported after the next welcome.
    unsent: Arc<Mutex<Vec<JsonValue>>>,
}

fn fail(context: &str, detail: impl std::fmt::Display) -> String {
    format!("{context}: {detail}")
}

/// Resolves the executable to run for a dispatch: the coordinator's
/// path if it exists on this host, else this agent's own executable
/// when the file names match — the handshake already proved the builds
/// are byte-identical, so the local copy computes the same thing even
/// when install paths differ across hosts.
fn resolve_exe(dispatched: &Path) -> Option<PathBuf> {
    if dispatched.exists() {
        return Some(dispatched.to_path_buf());
    }
    let own = std::env::current_exe().ok()?;
    (own.file_name() == dispatched.file_name()).then_some(own)
}

fn send(state: &AgentState, msg: &JsonValue) -> std::io::Result<()> {
    let mut w = state.writer.lock().unwrap_or_else(|e| e.into_inner());
    proto::write_msg(&mut *w, msg)
}

/// Runs one dispatched cell and ships its result.
fn run_dispatch(state: &AgentState, d: &Dispatch) {
    let timeout = d.timeout_ms.map(Duration::from_millis);
    let attempt = match resolve_exe(&d.exe) {
        Some(exe) => run_program(&exe, &d.args, timeout, false).attempt,
        None => ChildAttempt::Crashed(format!(
            "executable {} not found on agent host",
            d.exe.display()
        )),
    };
    let msg = JsonValue::object([
        ("kind", JsonValue::from("cell_result")),
        ("lease", JsonValue::from(d.lease)),
        ("result", proto::attempt_to_json(&attempt)),
    ]);
    state
        .leases
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&d.lease);
    if !state.dead.load(Ordering::Acquire) && send(state, &msg).is_ok() {
        state.done.fetch_add(1, Ordering::Relaxed);
    } else {
        // Coordinator gone mid-cell: keep the result and re-report it
        // on the next session (it resolves as stale there, but costs
        // nothing and closes the race where the lease still lives).
        state
            .unsent
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(msg);
    }
}

/// How one dialed session ended.
enum SessionEnd {
    /// The coordinator drained us (or shutdown was requested): done.
    Drained,
    /// The coordinator vanished mid-session; redial may help.
    Lost(String),
}

/// One session's accounting.
struct SessionReport {
    agent_id: u64,
    cells_done: u64,
    end: SessionEnd,
}

/// Why a session never got going.
enum SessionErr {
    /// A deliberate, structured refusal (protocol/binary mismatch) —
    /// redialing cannot fix a wrong build.
    Fatal(String),
    /// Connect/handshake plumbing failed; the coordinator may simply
    /// not be back yet.
    Connect(String),
}

/// The redial delay after `step` consecutive failures: capped
/// exponential, 250 ms → 10 s.
fn redial_delay(step: u32) -> Duration {
    REDIAL_BASE
        .saturating_mul(1u32 << step.min(8))
        .min(REDIAL_CAP)
}

/// Dials the coordinator and works until drained or shut down,
/// redialing across coordinator restarts (unless `cfg.redial` is off).
///
/// # Errors
///
/// A human-readable message on a structured rejection (version or
/// binary mismatch — never retried), or, with `redial: false`, on the
/// first connect failure or lost coordinator.
pub fn run_agent(cfg: &AgentConfig) -> Result<AgentReport, String> {
    let own_exe = std::env::current_exe().map_err(|e| fail("cannot locate own executable", e))?;
    let binary = file_fingerprint(&own_exe).map_err(|e| fail("cannot hash own executable", e))?;
    let slots = if cfg.slots == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        cfg.slots
    };

    let unsent: Arc<Mutex<Vec<JsonValue>>> = Arc::new(Mutex::new(Vec::new()));
    let mut total_done = 0u64;
    let mut last_agent_id = 0u64;
    let mut backoff_step = 0u32;
    loop {
        if cfg.shutdown.as_ref().is_some_and(ShutdownFlag::requested) {
            return Ok(AgentReport {
                agent_id: last_agent_id,
                cells_done: total_done,
            });
        }
        let detail = match run_session(cfg, &binary, slots, &unsent) {
            Ok(session) => {
                last_agent_id = session.agent_id;
                total_done += session.cells_done;
                match session.end {
                    SessionEnd::Drained => {
                        return Ok(AgentReport {
                            agent_id: last_agent_id,
                            cells_done: total_done,
                        });
                    }
                    // A welcomed session proves the address and build
                    // are right: restart the backoff clock.
                    SessionEnd::Lost(detail) => {
                        backoff_step = 0;
                        detail
                    }
                }
            }
            Err(SessionErr::Fatal(msg)) => return Err(msg),
            Err(SessionErr::Connect(msg)) => msg,
        };
        if !cfg.redial {
            return Err(detail);
        }
        let delay = redial_delay(backoff_step);
        backoff_step = backoff_step.saturating_add(1);
        eprintln!(
            "cmpsim agent: {detail}; redialing in {} ms",
            delay.as_millis()
        );
        // Sleep in small slices so SIGTERM still exits promptly.
        let until = Instant::now() + delay;
        while Instant::now() < until {
            if cfg.shutdown.as_ref().is_some_and(ShutdownFlag::requested) {
                return Ok(AgentReport {
                    agent_id: last_agent_id,
                    cells_done: total_done,
                });
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

/// One dial-to-disconnect session against the coordinator.
fn run_session(
    cfg: &AgentConfig,
    binary: &str,
    slots: usize,
    unsent: &Arc<Mutex<Vec<JsonValue>>>,
) -> Result<SessionReport, SessionErr> {
    let addr = cfg
        .connect
        .to_socket_addrs()
        .map_err(|e| SessionErr::Connect(fail(&format!("cannot resolve {}", cfg.connect), e)))?
        .next()
        .ok_or_else(|| SessionErr::Connect(format!("{} resolves to no address", cfg.connect)))?;
    let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)
        .map_err(|e| SessionErr::Connect(fail(&format!("cannot connect to {}", cfg.connect), e)))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_read_timeout(Some(HANDSHAKE_READ_TIMEOUT));
    let mut reader = MsgReader::new(
        stream
            .try_clone()
            .map_err(|e| SessionErr::Connect(fail("cannot clone socket", e)))?,
    );
    let writer = stream
        .try_clone()
        .map_err(|e| SessionErr::Connect(fail("cannot clone socket", e)))?;

    let hello = AgentHello {
        protocol: PROTOCOL_VERSION,
        binary: binary.to_owned(),
        version: env!("CARGO_PKG_VERSION").to_owned(),
        slots,
        pid: std::process::id(),
    };
    {
        let mut s = &stream;
        proto::write_msg(&mut s, &hello.to_msg())
            .map_err(|e| SessionErr::Connect(fail("cannot send hello", e)))?;
    }
    let welcome = match reader.next() {
        Ok(Some(msg)) => msg,
        Ok(None) => {
            return Err(SessionErr::Connect(
                "coordinator closed the connection during handshake".to_owned(),
            ));
        }
        Err(e) => return Err(SessionErr::Connect(fail("handshake read failed", e))),
    };
    match welcome.get("kind").and_then(JsonValue::as_str) {
        Some("agent_welcome") => {}
        Some("error") => {
            let detail = welcome
                .get("message")
                .and_then(JsonValue::as_str)
                .unwrap_or("unspecified");
            return Err(SessionErr::Fatal(fail(
                "coordinator rejected this agent",
                detail,
            )));
        }
        other => {
            return Err(SessionErr::Fatal(format!(
                "unexpected handshake reply kind {other:?}"
            )));
        }
    }
    let agent_id = welcome
        .get("agent_id")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| SessionErr::Fatal("agent_welcome lacks an agent_id".to_owned()))?;
    let heartbeat = Duration::from_millis(
        welcome
            .get("heartbeat_ms")
            .and_then(JsonValue::as_u64)
            .unwrap_or(2000)
            .max(50),
    );
    // From here, block on reads for at most one heartbeat interval so
    // shutdown and coordinator-silence checks run on that cadence.
    let _ = stream.set_read_timeout(Some(heartbeat));

    let state = Arc::new(AgentState {
        leases: Mutex::new(HashSet::new()),
        writer: Mutex::new(writer),
        done: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        dead: AtomicBool::new(false),
        unsent: Arc::clone(unsent),
    });

    // Re-report results finished during a previous session's outage.
    // Their lease ids belong to a dead incarnation, so the coordinator
    // settles them through its lease table (usually as stale results)
    // — idempotent either way, and it closes the window where the old
    // lease still lives on a restarted-in-place coordinator.
    {
        let stash: Vec<JsonValue> =
            std::mem::take(&mut *state.unsent.lock().unwrap_or_else(|e| e.into_inner()));
        if !stash.is_empty() {
            eprintln!(
                "cmpsim agent: re-reporting {} result(s) held across the outage",
                stash.len()
            );
        }
        for (i, msg) in stash.iter().enumerate() {
            if send(&state, msg).is_err() {
                // Lost again already: keep the remainder for next time.
                state
                    .unsent
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(stash[i..].iter().cloned());
                return Ok(SessionReport {
                    agent_id,
                    cells_done: 0,
                    end: SessionEnd::Lost("coordinator lost during re-report".to_owned()),
                });
            }
            state.done.fetch_add(1, Ordering::Relaxed);
        }
    }

    let beater = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || loop {
            std::thread::sleep(heartbeat);
            if state.stop.load(Ordering::Acquire) {
                return;
            }
            let leases: Vec<JsonValue> = state
                .leases
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|&id| JsonValue::from(id))
                .collect();
            let beat = JsonValue::object([
                ("kind", JsonValue::from("heartbeat")),
                ("leases", JsonValue::Array(leases)),
            ]);
            if send(&state, &beat).is_err() {
                return;
            }
        })
    };

    let outcome = std::thread::scope(|s| {
        let mut last_rx = Instant::now();
        let mut draining = false;
        let result = loop {
            if cfg.shutdown.as_ref().is_some_and(ShutdownFlag::requested) {
                break Ok(());
            }
            match reader.next() {
                Ok(Some(msg)) => {
                    last_rx = Instant::now();
                    match msg.get("kind").and_then(JsonValue::as_str) {
                        Some("dispatch") => match Dispatch::from_msg(&msg) {
                            Some(d) => {
                                if cfg.chaos_exit_label.as_deref() == Some(d.label.as_str()) {
                                    // Simulated node loss: no goodbye,
                                    // no result — the lease must be
                                    // reclaimed the hard way.
                                    std::process::abort();
                                }
                                state
                                    .leases
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .insert(d.lease);
                                let state = Arc::clone(&state);
                                s.spawn(move || run_dispatch(&state, &d));
                            }
                            None => eprintln!("cmpsim agent: malformed dispatch ignored"),
                        },
                        Some("heartbeat_ack") => {}
                        Some("drain") => {
                            draining = true;
                            break Ok(());
                        }
                        other => {
                            eprintln!("cmpsim agent: unexpected message kind {other:?} ignored");
                        }
                    }
                }
                Ok(None) => break Err("coordinator closed the connection".to_owned()),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if last_rx.elapsed() > heartbeat * 3 {
                        break Err(format!(
                            "coordinator unresponsive for {} ms",
                            last_rx.elapsed().as_millis()
                        ));
                    }
                }
                Err(e) => break Err(fail("read from coordinator failed", e)),
            }
        };
        if result.is_err() {
            // Declare the session dead *before* the scope joins the
            // job threads, so cells still finishing stash their
            // results for the next session instead of writing into a
            // dead socket (where the write can falsely succeed).
            state.dead.store(true, Ordering::Release);
            let w = state.writer.lock().unwrap_or_else(|e| e.into_inner());
            let _ = w.shutdown(std::net::Shutdown::Both);
        }
        result.map(|()| draining)
    });
    // The scope already joined all job threads, so every accepted cell
    // has shipped its result (drain) or stashed it (lost coordinator).
    state.stop.store(true, Ordering::Release);
    {
        let w = state.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = w.shutdown(std::net::Shutdown::Both);
    }
    let _ = beater.join();
    let end = match outcome {
        Ok(_drained) => SessionEnd::Drained,
        Err(detail) => SessionEnd::Lost(detail),
    };
    Ok(SessionReport {
        agent_id,
        cells_done: state.done.load(Ordering::Relaxed),
        end,
    })
}
