#![warn(missing_docs)]

//! `cmpsim-service` — the coordinator/worker grid service.
//!
//! The paper's experiment grids are embarrassingly shardable, but the
//! batch runner only parallelizes within one process tree. This crate
//! promotes it into a long-running service, the same shape as the
//! emulation infrastructure the original study submitted jobs *to*:
//!
//! * a **coordinator daemon** ([`Coordinator`]) listens on a TCP
//!   socket, accepts grid submissions as framed messages (the
//!   [`proto`] wire format reuses the length+FNV-1a record codec the
//!   result cache and run journal already share), and shards cells to
//!   a fleet of supervised worker processes,
//! * the coordinator **owns the shared content-addressed result
//!   cache**, so concurrent client sweeps dedup against each other: a
//!   cell computed for client A is a cache hit — or an in-flight join
//!   — for client B, and executes exactly once,
//! * scheduling is **fair across clients**: runs take turns handing
//!   one cell at a time to idle workers, so a small sweep is never
//!   starved behind a big one,
//! * every submission is **journalled server-side** with the same
//!   write-ahead [`RunJournal`](cmpsim_runner::RunJournal) as a local
//!   run, so `--resume` and poisoned-cell quarantine survive the
//!   network hop (and a client that vanishes mid-sweep forfeits
//!   nothing — the run completes and is resumable),
//! * per-run **flight-recorder telemetry** (worker lanes, queue-depth
//!   counters, dedup markers) lands in the standard
//!   `<run-id>.trace.jsonl` sidecar, so `cmpsim report` works on
//!   service runs exactly as on batch runs.
//!
//! * **remote agents** ([`agent`]) dial the same socket from other
//!   hosts, register over a versioned handshake (protocol version +
//!   binary fingerprint + slot count), and pull cells under leases
//!   renewed by heartbeat; a dead or silent agent's in-flight cells
//!   are reclaimed and re-enqueued under the same backoff/poison
//!   budget as local crashes, and the cache + journal keep the
//!   rerun idempotent.
//!
//! The [`client`] half turns a submission's streamed `job_done`
//! records back into a [`RunReport`](cmpsim_runner::RunReport) in
//! submission order, so a client renders byte-identical stdout/JSON to
//! a local run of the same spec.

pub mod agent;
pub mod client;
pub mod coordinator;
pub mod proto;

pub use agent::{run_agent, AgentConfig, AgentReport};
pub use client::{status, submit, SubmitOutcome};
pub use coordinator::{Coordinator, ServeConfig};
pub use proto::{Attach, CellSpec, Submission};
