//! The client half: submit a sweep, stream results, rebuild the
//! [`RunReport`].
//!
//! [`submit`] connects, sends one framed [`Submission`], then reads
//! `job_done` records as the coordinator streams them (in completion
//! order) and reassembles them by `seq` into submission order — so the
//! caller renders exactly what a local `cmpsim grid` run of the same
//! spec would have rendered, byte for byte.
//!
//! Every client socket carries deadlines: writes time out at 10 s, and
//! reads at 60 s — the coordinator pings live runs on its heartbeat
//! cadence, so a minute of silence means the daemon is wedged or gone,
//! not merely busy with a long cell.
//!
//! A connection lost mid-run does not fail the sweep: every `job_done`
//! carries a per-run record sequence (`rseq`), the client remembers the
//! highest one it has applied, and on loss it **reattaches** — redials
//! (with backoff, up to a ~60 s budget, riding out a coordinator
//! restart) and sends `attach {run_id, after_seq}`; the coordinator
//! replays the records the client missed from its journal and splices
//! the connection back into the live stream. Replayed and live records
//! fill the same seq-indexed slots, so the reassembled report — and
//! therefore stdout and the results JSON — is byte-identical to an
//! uninterrupted run.

use crate::proto::{self, Attach, MsgReader, Submission, PROTOCOL_VERSION};
use cmpsim_runner::{JobOutcome, JobReport, RunReport};
use cmpsim_telemetry::JsonValue;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Write deadline on the client socket.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Read deadline on the client socket. The coordinator's keepalive
/// pings arrive every heartbeat interval (seconds), so this only trips
/// when the daemon is actually unresponsive.
const READ_TIMEOUT: Duration = Duration::from_secs(60);

/// Total time the client keeps trying to reattach after losing its
/// connection — generous enough to ride out a daemon restart.
const REATTACH_BUDGET: Duration = Duration::from_secs(60);

/// What a finished submission came back with.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// The coordinator-side run id — what `--resume` takes.
    pub run_id: String,
    /// The reassembled report, jobs in submission order; feed it to
    /// the same rendering path as a local run.
    pub report: RunReport,
}

fn fail(context: &str, detail: impl std::fmt::Display) -> String {
    format!("{context}: {detail}")
}

fn connect(addr: &str) -> Result<(TcpStream, MsgReader<TcpStream>), String> {
    let stream =
        TcpStream::connect(addr).map_err(|e| fail(&format!("cannot connect to {addr}"), e))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let read_half = stream
        .try_clone()
        .map_err(|e| fail("cannot clone socket", e))?;
    Ok((stream, MsgReader::new(read_half)))
}

/// Reads the next message, turning EOF, deadlines, and protocol noise
/// into one error string. Keepalive `ping` messages are swallowed —
/// they exist only to reset the read deadline.
fn next_msg(reader: &mut MsgReader<TcpStream>) -> Result<JsonValue, String> {
    loop {
        match reader.next() {
            Ok(Some(msg)) => match msg.get("kind").and_then(JsonValue::as_str) {
                Some("ping") => continue,
                Some("error") => {
                    let detail = msg
                        .get("message")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("unspecified");
                    return Err(fail("coordinator rejected the request", detail));
                }
                _ => return Ok(msg),
            },
            Ok(None) => return Err("connection closed by the coordinator mid-run".to_owned()),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(format!(
                    "coordinator went silent for {}s (read deadline)",
                    READ_TIMEOUT.as_secs()
                ));
            }
            Err(e) => return Err(fail("cannot read from the coordinator", e)),
        }
    }
}

/// Submits a sweep and blocks until its `run_end`, reassembling the
/// streamed records into a [`RunReport`] in submission order.
///
/// # Errors
///
/// A human-readable message on connect/protocol failures, a rejected
/// submission, or a connection lost mid-run (the run still completes
/// server-side; resubmit with `resume` to collect it).
pub fn submit(addr: &str, sub: &Submission) -> Result<SubmitOutcome, String> {
    let start = Instant::now();
    let (mut stream, mut reader) = connect(addr)?;
    proto::write_msg(&mut stream, &sub.to_msg())
        .map_err(|e| fail("cannot send the submission", e))?;

    let accepted = next_msg(&mut reader)?;
    if accepted.get("kind").and_then(JsonValue::as_str) != Some("accepted") {
        return Err(fail("unexpected first reply", accepted.to_json()));
    }
    let run_id = accepted
        .get("run_id")
        .and_then(JsonValue::as_str)
        .ok_or("accepted message lacks a run_id")?
        .to_owned();
    let workers = accepted
        .get("workers")
        .and_then(JsonValue::as_u64)
        .unwrap_or(1) as usize;
    let recovered = accepted
        .get("recovered")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0) as usize;

    let mut jobs: Vec<Option<JobReport>> = (0..sub.cells.len()).map(|_| None).collect();
    let mut max_rseq = 0u64;
    loop {
        match stream_records(&mut reader, sub, &mut jobs, &mut max_rseq)? {
            StreamEnd::Ended => break,
            StreamEnd::Lost(detail) => {
                eprintln!("cmpsim submit: {detail}; reattaching to run {run_id}");
                reader = reattach(addr, &run_id, max_rseq)?;
            }
        }
    }

    let jobs = jobs
        .into_iter()
        .enumerate()
        .map(|(seq, j)| j.ok_or_else(|| format!("run ended without a result for seq {seq}")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SubmitOutcome {
        report: RunReport {
            jobs,
            workers,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            interrupted: false,
            run_id: Some(run_id.clone()),
            recovered,
        },
        run_id,
    })
}

/// How one streaming stint over a connection ended.
enum StreamEnd {
    /// The coordinator sent `run_end`.
    Ended,
    /// The connection died (EOF, deadline, reset); reattach may resume.
    Lost(String),
}

/// Applies `job_done` records from the current connection until
/// `run_end` or the connection dies. Records the client has already
/// applied (a replay overlapping a live record) are skipped, and
/// `max_rseq` tracks the reattach watermark.
///
/// `Err` means the *stream content* was malformed — reattaching cannot
/// fix that; a dead connection is `Ok(StreamEnd::Lost)`.
fn stream_records(
    reader: &mut MsgReader<TcpStream>,
    sub: &Submission,
    jobs: &mut [Option<JobReport>],
    max_rseq: &mut u64,
) -> Result<StreamEnd, String> {
    loop {
        let msg = match next_msg(reader) {
            Ok(msg) => msg,
            Err(detail) => return Ok(StreamEnd::Lost(detail)),
        };
        match msg.get("kind").and_then(JsonValue::as_str) {
            Some("job_done") => {
                let seq = msg
                    .get("seq")
                    .and_then(JsonValue::as_u64)
                    .ok_or("job_done message lacks a seq")? as usize;
                if let Some(rseq) = msg.get("rseq").and_then(JsonValue::as_u64) {
                    *max_rseq = (*max_rseq).max(rseq);
                }
                let slot = jobs
                    .get_mut(seq)
                    .ok_or_else(|| format!("job_done for unknown seq {seq}"))?;
                if slot.is_some() {
                    // Already applied before the connection dropped;
                    // the replay is allowed to overlap.
                    continue;
                }
                let outcome = msg
                    .get("outcome")
                    .and_then(JobOutcome::from_json)
                    .ok_or_else(|| format!("job_done for seq {seq} has a malformed outcome"))?;
                *slot = Some(JobReport {
                    label: msg
                        .get("label")
                        .and_then(JsonValue::as_str)
                        .unwrap_or(&sub.cells[seq].label)
                        .to_owned(),
                    outcome,
                    wall_ms: 0.0,
                    attempts: msg.get("attempts").and_then(JsonValue::as_u64).unwrap_or(0) as u32,
                    replayed: msg
                        .get("replayed")
                        .and_then(JsonValue::as_bool)
                        .unwrap_or(false),
                    backoff_ms: 0.0,
                });
            }
            Some("run_end") => return Ok(StreamEnd::Ended),
            other => return Err(format!("unexpected message kind {other:?} mid-run")),
        }
    }
}

/// Why one attach attempt did not stick.
enum AttachErr {
    /// The coordinator answered and said no (unknown or degraded run).
    Fatal(String),
    /// Plumbing — connect refused, EOF, deadline; the daemon may still
    /// be restarting.
    Retry(String),
}

/// One attach round-trip: connect, send `attach`, wait for `attached`.
fn try_attach(addr: &str, run_id: &str, after_seq: u64) -> Result<MsgReader<TcpStream>, AttachErr> {
    let (mut stream, mut reader) = connect(addr).map_err(AttachErr::Retry)?;
    let attach = Attach {
        run_id: run_id.to_owned(),
        after_seq,
    };
    proto::write_msg(&mut stream, &attach.to_msg())
        .map_err(|e| AttachErr::Retry(fail("cannot send the attach request", e)))?;
    loop {
        match reader.next() {
            Ok(Some(msg)) => match msg.get("kind").and_then(JsonValue::as_str) {
                Some("ping") => continue,
                Some("attached") => return Ok(reader),
                Some("error") => {
                    let detail = msg
                        .get("message")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("unspecified");
                    return Err(AttachErr::Fatal(fail(
                        "coordinator refused the reattach",
                        detail,
                    )));
                }
                other => {
                    return Err(AttachErr::Fatal(format!(
                        "unexpected attach reply kind {other:?}"
                    )));
                }
            },
            Ok(None) => {
                return Err(AttachErr::Retry(
                    "connection closed during reattach".to_owned(),
                ));
            }
            Err(e) => return Err(AttachErr::Retry(fail("reattach read failed", e))),
        }
    }
}

/// Reattaches to a run with capped-backoff retries inside
/// [`REATTACH_BUDGET`], returning the reader positioned after the
/// `attached` reply (the missed-record replay follows on it).
fn reattach(addr: &str, run_id: &str, after_seq: u64) -> Result<MsgReader<TcpStream>, String> {
    let deadline = Instant::now() + REATTACH_BUDGET;
    let mut delay = Duration::from_millis(250);
    loop {
        match try_attach(addr, run_id, after_seq) {
            Ok(reader) => return Ok(reader),
            Err(AttachErr::Fatal(detail)) => return Err(detail),
            Err(AttachErr::Retry(detail)) => {
                if Instant::now() + delay > deadline {
                    return Err(format!(
                        "cannot reattach to run {run_id} within {}s: {detail} \
                         (the run continues server-side; `--resume` collects it)",
                        REATTACH_BUDGET.as_secs()
                    ));
                }
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_secs(2));
            }
        }
    }
}

/// Asks a coordinator for its lifetime counters and fleet listing (the
/// `status` reply).
///
/// # Errors
///
/// A human-readable message on connect/protocol failures.
pub fn status(addr: &str) -> Result<JsonValue, String> {
    let (mut stream, mut reader) = connect(addr)?;
    proto::write_msg(
        &mut stream,
        &JsonValue::object([
            ("kind", JsonValue::from("status")),
            ("protocol", JsonValue::from(PROTOCOL_VERSION)),
        ]),
    )
    .map_err(|e| fail("cannot send the status request", e))?;
    let reply = next_msg(&mut reader)?;
    if reply.get("kind").and_then(JsonValue::as_str) != Some("counters") {
        return Err(fail("unexpected status reply", reply.to_json()));
    }
    Ok(reply)
}
