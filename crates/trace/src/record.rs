//! Individual memory references emitted by instrumented workload kernels.

use crate::addr::Addr;
use std::fmt;

/// The kind of a memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load.
    Read,
    /// A data store.
    Write,
    /// An instruction fetch. The co-simulation excludes these from LLC
    /// emulation by default (the paper's Dragonhead emulates a data-side
    /// LLC fed by FSB data transactions), but the kernels still emit them
    /// so instruction-mix statistics are complete.
    IFetch,
}

impl AccessKind {
    /// Whether the access reads memory (loads and instruction fetches).
    pub const fn is_read(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::IFetch)
    }

    /// Whether the access writes memory.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// Whether the access is a data access (not an instruction fetch).
    pub const fn is_data(self) -> bool {
        !matches!(self, AccessKind::IFetch)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
            AccessKind::IFetch => "I",
        };
        f.write_str(s)
    }
}

/// A single memory reference.
///
/// This is the unit of communication between an executing workload kernel
/// and the platform model. Core attribution happens later: the [DEX
/// scheduler] knows which virtual core is executing in the current time
/// slice, exactly as in the paper where Dragonhead learns the core id from
/// a message rather than from the transaction itself.
///
/// [DEX scheduler]: https://docs.rs/cmpsim-softsdv
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// The accessed (simulated physical) address.
    pub addr: Addr,
    /// Access size in bytes (1–4096).
    pub size: u32,
    /// Load, store, or instruction fetch.
    pub kind: AccessKind,
}

impl MemRef {
    /// Creates a data-load reference.
    pub const fn read(addr: Addr, size: u32) -> Self {
        MemRef {
            addr,
            size,
            kind: AccessKind::Read,
        }
    }

    /// Creates a data-store reference.
    pub const fn write(addr: Addr, size: u32) -> Self {
        MemRef {
            addr,
            size,
            kind: AccessKind::Write,
        }
    }

    /// Creates an instruction-fetch reference.
    pub const fn ifetch(addr: Addr, size: u32) -> Self {
        MemRef {
            addr,
            size,
            kind: AccessKind::IFetch,
        }
    }

    /// Iterates over the cache-line numbers this reference touches for the
    /// given line size. A reference that straddles a line boundary touches
    /// two (or more) lines, and the cache model must look each up.
    ///
    /// # Example
    ///
    /// ```
    /// use cmpsim_trace::{Addr, MemRef};
    /// let r = MemRef::read(Addr::new(60), 8); // straddles lines 0 and 1
    /// let lines: Vec<u64> = r.lines(64).collect();
    /// assert_eq!(lines, vec![0, 1]);
    /// ```
    pub fn lines(&self, line_size: u64) -> impl Iterator<Item = u64> {
        let first = self.addr.line(line_size);
        let last = self
            .addr
            .offset(u64::from(self.size.max(1)) - 1)
            .line(line_size);
        first..=last
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}B]", self.kind, self.addr, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(AccessKind::IFetch.is_read());
        assert!(!AccessKind::IFetch.is_data());
        assert!(AccessKind::Read.is_data());
    }

    #[test]
    fn constructors_set_kind() {
        let a = Addr::new(0x40);
        assert_eq!(MemRef::read(a, 4).kind, AccessKind::Read);
        assert_eq!(MemRef::write(a, 4).kind, AccessKind::Write);
        assert_eq!(MemRef::ifetch(a, 4).kind, AccessKind::IFetch);
    }

    #[test]
    fn single_line_access() {
        let r = MemRef::read(Addr::new(0x100), 8);
        assert_eq!(r.lines(64).collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let r = MemRef::write(Addr::new(0x13c), 8);
        assert_eq!(r.lines(64).collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn large_access_touches_many_lines() {
        let r = MemRef::read(Addr::new(0), 256);
        assert_eq!(r.lines(64).count(), 4);
        assert_eq!(r.lines(256).count(), 1);
    }

    #[test]
    fn zero_size_access_touches_one_line() {
        let r = MemRef::read(Addr::new(0x40), 0);
        assert_eq!(r.lines(64).count(), 1);
    }

    #[test]
    fn display_formats() {
        let r = MemRef::read(Addr::new(0x40), 8);
        assert_eq!(r.to_string(), "R 0x0000000040 [8B]");
    }
}
