#![warn(missing_docs)]

//! Memory-reference and front-side-bus (FSB) transaction substrate for
//! `cmpsim`.
//!
//! This crate provides the vocabulary types shared by every other layer of
//! the co-simulation stack:
//!
//! * [`Addr`] and [`AddressSpace`] — a simulated physical address space in
//!   which workload kernels lay out their data structures,
//! * [`MemRef`] — a single memory reference emitted by an instrumented
//!   workload kernel,
//! * [`FsbTransaction`] — a bus-level transaction as observed by a passive
//!   snooper sitting on the front-side bus,
//! * [`Message`] and [`MessageCodec`] — the SoftSDV → Dragonhead
//!   co-simulation control protocol, encoded as memory transactions to a
//!   reserved address window exactly as described in §3.3 of the paper,
//! * [`TraceSink`] / [`Tracer`] — the instrumentation channel between
//!   workload kernels and the platform model,
//! * [`Pcg32`] — a small deterministic RNG so that every simulation is
//!   bit-reproducible across runs and platforms.
//!
//! # Example
//!
//! ```
//! use cmpsim_trace::{AddressSpace, Tracer, VecSink, AccessKind};
//!
//! let mut space = AddressSpace::new();
//! let table = space.alloc("table", 4096, 64);
//! let mut tracer = Tracer::new(VecSink::new());
//! tracer.read(table.addr_at(128), 8);
//! tracer.ops(3); // three non-memory instructions
//! assert_eq!(tracer.instructions(), 4);
//! let sink = tracer.into_sink();
//! assert_eq!(sink.records().len(), 1);
//! assert_eq!(sink.records()[0].kind, AccessKind::Read);
//! ```

pub mod addr;
pub mod file;
pub mod fsb;
pub mod message;
pub mod record;
pub mod rng;
pub mod scale;
pub mod stream;

pub use addr::{Addr, AddressSpace, Region};
pub use fsb::{FsbKind, FsbTransaction};
pub use message::{
    Message, MessageCodec, MessageDecodeError, ProtocolState, ProtocolStats, WireKind,
    MSG_WINDOW_BASE, MSG_WINDOW_SIZE,
};
pub use record::{AccessKind, MemRef};
pub use rng::{Pcg32, ZipfTable};
pub use scale::Scale;
pub use stream::{CountingSink, FnSink, NullSink, TeeSink, TraceSink, Tracer, VecSink};
