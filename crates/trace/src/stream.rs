//! Trace sinks and the kernel-side tracer.
//!
//! Workload kernels are *instrumented executions*: they run their real
//! algorithm and report every memory reference (plus a count of non-memory
//! instructions) through a [`Tracer`]. The tracer forwards references to a
//! generic [`TraceSink`], which in the full co-simulation is the virtual
//! platform's memory hierarchy; in unit tests it is a [`VecSink`] or a
//! [`CountingSink`].

use crate::addr::Addr;
use crate::record::{AccessKind, MemRef};

/// A consumer of memory references.
///
/// Sinks are generic (monomorphized) rather than trait objects because the
/// tracing channel is the hottest path in the whole simulator: every load
/// and store of a multi-billion-instruction workload passes through
/// [`TraceSink::record`].
pub trait TraceSink {
    /// Consumes one memory reference.
    fn record(&mut self, r: MemRef);
}

/// Forwarding impl so `&mut S` can be used wherever a sink is consumed.
impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline]
    fn record(&mut self, r: MemRef) {
        (**self).record(r);
    }
}

/// A sink that stores every reference. Intended for tests and small traces.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    records: Vec<MemRef>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The references recorded so far, in order.
    pub fn records(&self) -> &[MemRef] {
        &self.records
    }

    /// Consumes the sink and returns the recorded references.
    pub fn into_records(self) -> Vec<MemRef> {
        self.records
    }
}

impl TraceSink for VecSink {
    #[inline]
    fn record(&mut self, r: MemRef) {
        self.records.push(r);
    }
}

/// A sink that only counts references by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of data loads seen.
    pub reads: u64,
    /// Number of data stores seen.
    pub writes: u64,
    /// Number of instruction fetches seen.
    pub ifetches: u64,
    /// Total bytes accessed.
    pub bytes: u64,
}

impl CountingSink {
    /// Creates a zeroed counter sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total references of any kind.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.ifetches
    }
}

impl TraceSink for CountingSink {
    #[inline]
    fn record(&mut self, r: MemRef) {
        match r.kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
            AccessKind::IFetch => self.ifetches += 1,
        }
        self.bytes += u64::from(r.size);
    }
}

/// A sink that discards everything. Useful for measuring pure kernel
/// execution speed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&mut self, _r: MemRef) {}
}

/// A sink that duplicates each reference into two child sinks.
#[derive(Debug, Clone, Default)]
pub struct TeeSink<A, B> {
    /// First child sink.
    pub first: A,
    /// Second child sink.
    pub second: B,
}

impl<A, B> TeeSink<A, B> {
    /// Creates a tee over two sinks.
    pub fn new(first: A, second: B) -> Self {
        TeeSink { first, second }
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    #[inline]
    fn record(&mut self, r: MemRef) {
        self.first.record(r);
        self.second.record(r);
    }
}

/// A sink that invokes a closure per reference.
pub struct FnSink<F>(pub F);

impl<F: FnMut(MemRef)> TraceSink for FnSink<F> {
    #[inline]
    fn record(&mut self, r: MemRef) {
        (self.0)(r);
    }
}

impl<F> std::fmt::Debug for FnSink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnSink(..)")
    }
}

/// The kernel-side instrumentation handle.
///
/// A `Tracer` counts the instruction mix (memory vs non-memory, loads vs
/// stores) while forwarding memory references to its sink. One memory
/// instruction is charged per [`read`](Tracer::read) / [`write`](Tracer::write)
/// call; non-memory work is charged in bulk with [`ops`](Tracer::ops), with
/// per-workload op weights derived from the algorithm's arithmetic and
/// branch structure (see the `cmpsim-workloads` crate).
#[derive(Debug, Clone, Default)]
pub struct Tracer<S> {
    sink: S,
    loads: u64,
    stores: u64,
    other_ops: u64,
    frac_ops: f64,
}

impl<S: TraceSink> Tracer<S> {
    /// Creates a tracer feeding `sink`.
    pub fn new(sink: S) -> Self {
        Tracer {
            sink,
            loads: 0,
            stores: 0,
            other_ops: 0,
            frac_ops: 0.0,
        }
    }

    /// Records a data load of `size` bytes at `addr`.
    #[inline]
    pub fn read(&mut self, addr: Addr, size: u32) {
        self.loads += 1;
        self.sink.record(MemRef::read(addr, size));
    }

    /// Records a data store of `size` bytes at `addr`.
    #[inline]
    pub fn write(&mut self, addr: Addr, size: u32) {
        self.stores += 1;
        self.sink.record(MemRef::write(addr, size));
    }

    /// Records a read-modify-write (one load plus one store to `addr`).
    #[inline]
    pub fn update(&mut self, addr: Addr, size: u32) {
        self.read(addr, size);
        self.write(addr, size);
    }

    /// Charges `n` non-memory instructions (ALU ops, branches, ...).
    #[inline]
    pub fn ops(&mut self, n: u64) {
        self.other_ops += n;
    }

    /// Charges a fractional number of non-memory instructions. Whole
    /// parts are credited immediately; the remainder accumulates. This is
    /// how kernels calibrate their instruction mix to fractional
    /// ops-per-access ratios (e.g. PLSA's 0.2 non-memory ops per memory
    /// instruction, which yields Table 2's 83 % memory instructions).
    #[inline]
    pub fn ops_f(&mut self, n: f64) {
        self.frac_ops += n;
        if self.frac_ops >= 1.0 {
            let whole = self.frac_ops as u64;
            self.other_ops += whole;
            self.frac_ops -= whole as f64;
        }
    }

    /// Data loads recorded.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Data stores recorded.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Memory instructions recorded (loads + stores).
    pub fn memory_instructions(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total instructions recorded (memory + non-memory).
    pub fn instructions(&self) -> u64 {
        self.memory_instructions() + self.other_ops
    }

    /// Fraction of instructions that reference memory, in [0, 1].
    /// Returns 0 for an empty trace.
    pub fn memory_fraction(&self) -> f64 {
        ratio(self.memory_instructions(), self.instructions())
    }

    /// Fraction of instructions that are memory *reads*, in [0, 1].
    pub fn read_fraction(&self) -> f64 {
        ratio(self.loads, self.instructions())
    }

    /// Shared access to the sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Exclusive access to the sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the tracer and returns the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_preserves_order() {
        let mut t = Tracer::new(VecSink::new());
        t.read(Addr::new(0), 4);
        t.write(Addr::new(64), 8);
        let rec = t.into_sink().into_records();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec[0].kind, AccessKind::Read);
        assert_eq!(rec[1].kind, AccessKind::Write);
        assert_eq!(rec[1].addr, Addr::new(64));
    }

    #[test]
    fn counting_sink_counts_by_kind() {
        let mut s = CountingSink::new();
        s.record(MemRef::read(Addr::new(0), 4));
        s.record(MemRef::read(Addr::new(0), 4));
        s.record(MemRef::write(Addr::new(0), 8));
        s.record(MemRef::ifetch(Addr::new(0), 16));
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.ifetches, 1);
        assert_eq!(s.total(), 4);
        assert_eq!(s.bytes, 32);
    }

    #[test]
    fn tee_duplicates() {
        let mut tee = TeeSink::new(CountingSink::new(), VecSink::new());
        tee.record(MemRef::read(Addr::new(0), 4));
        assert_eq!(tee.first.reads, 1);
        assert_eq!(tee.second.records().len(), 1);
    }

    #[test]
    fn fn_sink_invokes_closure() {
        let mut n = 0u64;
        {
            let mut s = FnSink(|_r| n += 1);
            s.record(MemRef::read(Addr::new(0), 4));
            s.record(MemRef::write(Addr::new(0), 4));
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn tracer_instruction_mix() {
        let mut t = Tracer::new(NullSink);
        t.read(Addr::new(0), 8);
        t.read(Addr::new(8), 8);
        t.write(Addr::new(16), 8);
        t.ops(7);
        assert_eq!(t.loads(), 2);
        assert_eq!(t.stores(), 1);
        assert_eq!(t.memory_instructions(), 3);
        assert_eq!(t.instructions(), 10);
        assert!((t.memory_fraction() - 0.3).abs() < 1e-12);
        assert!((t.read_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn tracer_update_is_load_plus_store() {
        let mut t = Tracer::new(CountingSink::new());
        t.update(Addr::new(0), 8);
        assert_eq!(t.loads(), 1);
        assert_eq!(t.stores(), 1);
        assert_eq!(t.sink().total(), 2);
    }

    #[test]
    fn empty_tracer_fractions_are_zero() {
        let t = Tracer::new(NullSink);
        assert_eq!(t.memory_fraction(), 0.0);
        assert_eq!(t.read_fraction(), 0.0);
    }

    #[test]
    fn fractional_ops_accumulate() {
        let mut t = Tracer::new(NullSink);
        for _ in 0..10 {
            t.ops_f(0.25);
        }
        assert_eq!(t.instructions(), 2); // 2.5 accrued, 2 credited
        t.ops_f(0.5);
        assert_eq!(t.instructions(), 3);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        fn feed<S: TraceSink>(mut s: S) {
            s.record(MemRef::read(Addr::new(0), 4));
        }
        let mut counter = CountingSink::new();
        feed(&mut counter);
        feed(&mut counter);
        assert_eq!(counter.reads, 2);
    }
}
