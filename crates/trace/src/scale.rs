//! Global scale knob.
//!
//! The paper runs every workload to completion — 15 to 357 *billion*
//! instructions — on FPGA-accelerated infrastructure. A software
//! reproduction sweeping 8 workloads × 3 CMP sizes × 7 cache sizes cannot
//! afford that, so all footprints and iteration counts are divided by a
//! power of two. Crucially, the *experiment harness applies the same
//! divisor to the cache sizes*, so every shape the paper reports (the
//! position of working-set knees relative to cache size, sharing
//! categories, line-size crossovers) is preserved exactly; only absolute
//! bytes change. `EXPERIMENTS.md` records the scale used for each run.

use std::fmt;

/// A power-of-two divisor applied to all byte sizes and work counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scale {
    shift: u32,
}

impl Scale {
    /// Full paper scale (divisor 1): 4 MB–256 MB caches, up to 300 MB
    /// footprints. Hours of simulation for the full sweep.
    pub const fn paper() -> Self {
        Scale { shift: 0 }
    }

    /// Continuous-integration scale (divisor 16): 256 KB–16 MB caches,
    /// ≤ 19 MB footprints. The default for benches.
    pub const fn ci() -> Self {
        Scale { shift: 4 }
    }

    /// Unit-test scale (divisor 256): everything fits in a few hundred
    /// kilobytes and single workload runs take milliseconds.
    pub const fn tiny() -> Self {
        Scale { shift: 8 }
    }

    /// A custom power-of-two divisor `2^shift`.
    ///
    /// # Panics
    ///
    /// Panics if `shift > 16`.
    pub fn with_shift(shift: u32) -> Self {
        assert!(shift <= 16, "scale shift {shift} too large");
        Scale { shift }
    }

    /// The shift (log2 of the divisor).
    pub const fn shift(&self) -> u32 {
        self.shift
    }

    /// The divisor.
    pub const fn divisor(&self) -> u64 {
        1 << self.shift
    }

    /// Scales a byte size down, keeping at least `floor` bytes.
    pub const fn bytes_floor(&self, paper_bytes: u64, floor: u64) -> u64 {
        let scaled = paper_bytes >> self.shift;
        if scaled < floor {
            floor
        } else {
            scaled
        }
    }

    /// Scales a byte size down (floor of 64 bytes — one cache line).
    pub const fn bytes(&self, paper_bytes: u64) -> u64 {
        self.bytes_floor(paper_bytes, 64)
    }

    /// Scales an element/iteration count down (floor of 1).
    pub const fn count(&self, paper_count: u64) -> u64 {
        self.bytes_floor(paper_count, 1)
    }

    /// Scales a power-of-two byte size (cache capacities), keeping the
    /// result a power of two and at least `floor`.
    pub fn pow2_bytes(&self, paper_bytes: u64, floor: u64) -> u64 {
        debug_assert!(paper_bytes.is_power_of_two());
        self.bytes_floor(paper_bytes, floor).next_power_of_two()
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::ci()
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.shift {
            0 => f.write_str("paper (1:1)"),
            s => write!(f, "1:{}", 1u64 << s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_identity() {
        let s = Scale::paper();
        assert_eq!(s.bytes(300 << 20), 300 << 20);
        assert_eq!(s.count(990_000), 990_000);
        assert_eq!(s.divisor(), 1);
    }

    #[test]
    fn ci_scale_divides_by_16() {
        let s = Scale::ci();
        assert_eq!(s.bytes(256 << 20), 16 << 20);
        assert_eq!(s.count(16_000), 1_000);
    }

    #[test]
    fn floors_are_respected() {
        let s = Scale::tiny();
        assert_eq!(s.bytes(64), 64);
        assert_eq!(s.count(10), 1);
        assert_eq!(s.bytes_floor(1 << 20, 8192), 8192);
    }

    #[test]
    fn pow2_stays_pow2() {
        let s = Scale::with_shift(3);
        for size in [1u64 << 20, 4 << 20, 256 << 20] {
            assert!(s.pow2_bytes(size, 4096).is_power_of_two());
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Scale::paper().to_string(), "paper (1:1)");
        assert_eq!(Scale::ci().to_string(), "1:16");
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn excessive_shift_panics() {
        let _ = Scale::with_shift(30);
    }
}
