//! Front-side-bus transactions as seen by a passive snooper.
//!
//! Dragonhead sits on the FSB behind the host processor's private caches
//! (§3.1 of the paper), so what it observes is not individual loads and
//! stores but *bus transactions*: line fills, read-for-ownership requests,
//! and writebacks, plus the reserved-window transactions the co-simulation
//! uses as control messages.

use crate::addr::Addr;
use crate::message::MSG_WINDOW_BASE;
use std::fmt;

/// The transaction types a P4-era front-side bus carries for the memory
/// subsystem. Names follow Intel bus conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsbKind {
    /// Bus Read Line — a clean line fill caused by a load miss (or an
    /// instruction fetch miss).
    ReadLine,
    /// Bus Read Invalidate Line — read-for-ownership caused by a store
    /// miss; fetches the line and invalidates other copies.
    ReadInvalidateLine,
    /// Bus Write Line — an explicit writeback of a dirty line.
    WriteLine,
    /// A transaction inside the reserved co-simulation message window.
    Message,
}

impl FsbKind {
    /// Whether this transaction transfers a full cache line of data.
    pub const fn is_data(self) -> bool {
        !matches!(self, FsbKind::Message)
    }

    /// Whether this transaction asks for ownership (will dirty the line).
    pub const fn is_ownership(self) -> bool {
        matches!(self, FsbKind::ReadInvalidateLine | FsbKind::WriteLine)
    }
}

impl fmt::Display for FsbKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FsbKind::ReadLine => "BRL",
            FsbKind::ReadInvalidateLine => "BRIL",
            FsbKind::WriteLine => "BWL",
            FsbKind::Message => "MSG",
        };
        f.write_str(s)
    }
}

/// One transaction observed on the front-side bus.
///
/// `cycle` is the bus-clock timestamp at which the transaction's address
/// phase was observed; the paper's Dragonhead uses it (together with the
/// cycles-completed messages) to produce time-synchronized statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FsbTransaction {
    /// Bus-clock cycle of the address phase.
    pub cycle: u64,
    /// Transaction type.
    pub kind: FsbKind,
    /// Line-aligned physical address (or message-window address).
    pub addr: Addr,
}

impl FsbTransaction {
    /// Creates a transaction, classifying reserved-window addresses as
    /// [`FsbKind::Message`] regardless of the requested kind — a passive
    /// snooper classifies by address decode, not by intent.
    pub fn new(cycle: u64, kind: FsbKind, addr: Addr) -> Self {
        let kind = if addr.raw() >= MSG_WINDOW_BASE {
            FsbKind::Message
        } else {
            kind
        };
        FsbTransaction { cycle, kind, addr }
    }

    /// Whether the transaction falls in the co-simulation message window.
    pub fn is_message(&self) -> bool {
        matches!(self.kind, FsbKind::Message)
    }
}

impl fmt::Display for FsbTransaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {} {}", self.cycle, self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_and_ownership_predicates() {
        assert!(FsbKind::ReadLine.is_data());
        assert!(!FsbKind::Message.is_data());
        assert!(FsbKind::ReadInvalidateLine.is_ownership());
        assert!(FsbKind::WriteLine.is_ownership());
        assert!(!FsbKind::ReadLine.is_ownership());
    }

    #[test]
    fn reserved_window_is_always_message() {
        let t = FsbTransaction::new(0, FsbKind::ReadLine, Addr::new(MSG_WINDOW_BASE + 0x40));
        assert_eq!(t.kind, FsbKind::Message);
        assert!(t.is_message());
    }

    #[test]
    fn normal_address_keeps_kind() {
        let t = FsbTransaction::new(7, FsbKind::WriteLine, Addr::new(0x1000));
        assert_eq!(t.kind, FsbKind::WriteLine);
        assert!(!t.is_message());
        assert_eq!(t.cycle, 7);
    }

    #[test]
    fn display_formats() {
        let t = FsbTransaction::new(3, FsbKind::ReadLine, Addr::new(0x40));
        assert_eq!(t.to_string(), "@3 BRL 0x0000000040");
    }
}
