//! Simulated physical addresses and a region-based address space.
//!
//! Workload kernels do not use host pointers; they lay out their data
//! structures in a simulated physical address space so that the cache
//! simulator sees addresses with the same structure (bases, strides,
//! alignment) as the paper's native x86 binaries produced on the FSB.

use std::fmt;

/// A simulated physical address.
///
/// `Addr` is a transparent newtype over `u64` ([C-NEWTYPE]): keeping
/// simulated addresses a distinct type prevents them from being confused
/// with counters, sizes, or host pointers anywhere in the stack.
///
/// # Example
///
/// ```
/// use cmpsim_trace::Addr;
/// let a = Addr::new(0x1040);
/// assert_eq!(a.line(64), 0x41);
/// assert_eq!(a.line_base(64), Addr::new(0x1040));
/// assert_eq!(Addr::new(0x105f).line_base(64), Addr::new(0x1040));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw 64-bit value of this address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache-line number this address falls in for the given line size.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `line_size` is not a power of two.
    pub const fn line(self, line_size: u64) -> u64 {
        debug_assert!(line_size.is_power_of_two());
        self.0 / line_size
    }

    /// The first address of the cache line containing `self`.
    pub const fn line_base(self, line_size: u64) -> Addr {
        Addr(self.0 & !(line_size - 1))
    }

    /// The byte offset of this address within its cache line.
    pub const fn line_offset(self, line_size: u64) -> u64 {
        self.0 & (line_size - 1)
    }

    /// Returns this address displaced by `delta` bytes.
    pub const fn offset(self, delta: u64) -> Addr {
        Addr(self.0 + delta)
    }

    /// Checked subtraction of two addresses, as a byte distance.
    pub fn distance_from(self, base: Addr) -> Option<u64> {
        self.0.checked_sub(base.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

/// A named, contiguous allocation inside an [`AddressSpace`].
///
/// Regions model a single data structure of a workload (a data table, an
/// FP-tree arena, a frame buffer, ...). Kernels compute addresses relative
/// to a region with [`Region::addr_at`], which bounds-checks in debug
/// builds so layout bugs surface as panics instead of silently aliasing
/// other structures.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    name: String,
    base: Addr,
    size: u64,
}

impl Region {
    /// The human-readable name the region was allocated under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// First address of the region.
    pub const fn base(&self) -> Addr {
        self.base
    }

    /// Size of the region in bytes.
    pub const fn size(&self) -> u64 {
        self.size
    }

    /// One past the last address of the region.
    pub const fn end(&self) -> Addr {
        Addr::new(self.base.raw() + self.size)
    }

    /// The address `offset` bytes into the region.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset >= self.size()`.
    #[inline]
    pub fn addr_at(&self, offset: u64) -> Addr {
        debug_assert!(
            offset < self.size,
            "offset {offset:#x} out of bounds for region `{}` of size {:#x}",
            self.name,
            self.size
        );
        self.base.offset(offset)
    }

    /// The address of element `index` in an array of `elem_size`-byte
    /// elements starting at the region base.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the element ends outside the region.
    #[inline]
    pub fn elem(&self, index: u64, elem_size: u64) -> Addr {
        debug_assert!(
            (index + 1) * elem_size <= self.size,
            "element {index} (size {elem_size}) out of bounds for region `{}`",
            self.name
        );
        self.base.offset(index * elem_size)
    }

    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Default base of the first allocation: leaves the low 256 MiB free, the
/// way a real machine reserves low physical memory for firmware and MMIO.
pub const DEFAULT_BASE: u64 = 0x1000_0000;

/// A bump allocator over the simulated physical address space.
///
/// Each workload instance owns one `AddressSpace`; per-thread private
/// structures are separate regions, so different threads' private data never
/// share cache lines (matching the paper's workloads, which allocate
/// per-thread buffers with malloc).
///
/// # Example
///
/// ```
/// use cmpsim_trace::AddressSpace;
/// let mut space = AddressSpace::new();
/// let a = space.alloc("a", 100, 64);
/// let b = space.alloc("b", 100, 64);
/// assert!(a.end() <= b.base());
/// assert_eq!(b.base().raw() % 64, 0);
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    cursor: u64,
    regions: Vec<Region>,
}

impl AddressSpace {
    /// Creates an address space with the default base address.
    pub fn new() -> Self {
        Self::with_base(Addr::new(DEFAULT_BASE))
    }

    /// Creates an address space whose first allocation starts at `base`.
    pub fn with_base(base: Addr) -> Self {
        AddressSpace {
            cursor: base.raw(),
            regions: Vec::new(),
        }
    }

    /// Allocates a region of `size` bytes aligned to `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or `size` is zero.
    pub fn alloc(&mut self, name: &str, size: u64, align: u64) -> Region {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(size > 0, "cannot allocate an empty region");
        let base = (self.cursor + align - 1) & !(align - 1);
        self.cursor = base + size;
        let region = Region {
            name: name.to_owned(),
            base: Addr::new(base),
            size,
        };
        self.regions.push(region.clone());
        region
    }

    /// Allocates a region page-aligned (4 KiB), the way large malloc/mmap
    /// allocations land in practice.
    pub fn alloc_pages(&mut self, name: &str, size: u64) -> Region {
        self.alloc(name, size, 4096)
    }

    /// Total bytes allocated so far (the data footprint of the workload).
    pub fn footprint(&self) -> u64 {
        self.regions.iter().map(Region::size).sum()
    }

    /// All regions allocated so far, in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Looks a region up by name.
    pub fn region(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name == name)
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math() {
        let a = Addr::new(0x1234);
        assert_eq!(a.line(64), 0x48);
        assert_eq!(a.line_base(64).raw(), 0x1200);
        assert_eq!(a.line_offset(64), 0x34);
        assert_eq!(a.line_base(4096).raw(), 0x1000);
    }

    #[test]
    fn line_base_identity_for_aligned() {
        for ls in [64u64, 128, 256, 512, 1024, 2048, 4096] {
            let a = Addr::new(7 * ls);
            assert_eq!(a.line_base(ls), a);
            assert_eq!(a.line_offset(ls), 0);
        }
    }

    #[test]
    fn offset_and_distance() {
        let a = Addr::new(0x1000);
        let b = a.offset(0x40);
        assert_eq!(b.distance_from(a), Some(0x40));
        assert_eq!(a.distance_from(b), None);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(0xdead).to_string(), "0x000000dead");
        assert_eq!(format!("{:x}", Addr::new(0xdead)), "dead");
        assert_eq!(format!("{:X}", Addr::new(0xdead)), "DEAD");
    }

    #[test]
    fn alloc_respects_alignment() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 3, 64);
        let b = s.alloc("b", 10, 4096);
        assert_eq!(a.base().raw() % 64, 0);
        assert_eq!(b.base().raw() % 4096, 0);
        assert!(b.base() >= a.end());
    }

    #[test]
    fn alloc_regions_disjoint() {
        let mut s = AddressSpace::new();
        let regions: Vec<_> = (0..32)
            .map(|i| s.alloc(&format!("r{i}"), 100 + i * 37, 1 << (i % 7)))
            .collect();
        for w in regions.windows(2) {
            assert!(w[0].end() <= w[1].base());
        }
    }

    #[test]
    fn footprint_sums_sizes() {
        let mut s = AddressSpace::new();
        s.alloc("a", 100, 64);
        s.alloc("b", 200, 64);
        assert_eq!(s.footprint(), 300);
    }

    #[test]
    fn region_lookup_by_name() {
        let mut s = AddressSpace::new();
        s.alloc("matrix", 1024, 64);
        assert!(s.region("matrix").is_some());
        assert!(s.region("nope").is_none());
    }

    #[test]
    fn region_contains() {
        let mut s = AddressSpace::new();
        let r = s.alloc("r", 128, 64);
        assert!(r.contains(r.base()));
        assert!(r.contains(r.addr_at(127)));
        assert!(!r.contains(r.end()));
    }

    #[test]
    fn elem_addressing() {
        let mut s = AddressSpace::new();
        let r = s.alloc("arr", 64 * 10, 64);
        assert_eq!(r.elem(3, 64), r.base().offset(192));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[cfg(debug_assertions)]
    fn addr_at_bounds_checked() {
        let mut s = AddressSpace::new();
        let r = s.alloc("r", 64, 64);
        let _ = r.addr_at(64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn alloc_rejects_bad_alignment() {
        let mut s = AddressSpace::new();
        let _ = s.alloc("r", 64, 3);
    }
}
