//! The SoftSDV → Dragonhead co-simulation control protocol.
//!
//! §3.3 of the paper: *"Some memory transactions are predefined as messages
//! from SoftSDV to Dragonhead"*. The simulator communicates with the passive
//! cache emulator over the only channel a bus snooper can observe — memory
//! transactions — by reserving a high address window and encoding the
//! message kind and payload in the transaction address bits.
//!
//! Five messages exist, exactly the paper's list:
//!
//! 1. start emulation,
//! 2. stop emulation,
//! 3. core id,
//! 4. instructions retired,
//! 5. cycles completed.
//!
//! 64-bit payloads do not fit in the address bits of one transaction, so
//! they are carried by a *high-half* transaction followed by a *low-half*
//! transaction. The encoder omits the high half when it is zero; the decoder
//! treats a missing high half as zero.

use crate::addr::Addr;
use crate::fsb::{FsbKind, FsbTransaction};
use std::fmt;

/// Base of the reserved message window (64 TiB), far above any simulated
/// DRAM address.
pub const MSG_WINDOW_BASE: u64 = 1 << 46;

/// Size of the reserved message window.
pub const MSG_WINDOW_SIZE: u64 = 1 << 43;

const KIND_SHIFT: u32 = 38;
const PAYLOAD_SHIFT: u32 = 6; // keep message addresses line-aligned
const PAYLOAD_MASK: u64 = 0xFFFF_FFFF;

const KIND_START: u64 = 1;
const KIND_STOP: u64 = 2;
const KIND_CORE_ID: u64 = 3;
const KIND_INSTRET_LO: u64 = 4;
const KIND_INSTRET_HI: u64 = 5;
const KIND_CYCLES_LO: u64 = 6;
const KIND_CYCLES_HI: u64 = 7;

/// A co-simulation control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Message {
    /// Begin attributing bus traffic to the simulated workload.
    Start,
    /// Stop attributing bus traffic (e.g. the host OS is about to run).
    Stop,
    /// The virtual core that owns the current DEX time slice.
    CoreId(u32),
    /// Cumulative instructions retired by the current core, for
    /// instruction-synchronized statistics (MPKI).
    InstructionsRetired(u64),
    /// Cumulative simulated cycles completed, for time-synchronized
    /// statistics (miss rate over time).
    CyclesCompleted(u64),
}

/// Errors produced when decoding a message transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageDecodeError {
    /// The transaction address is not in the reserved window.
    NotAMessage(Addr),
    /// The kind field holds a value the protocol does not define.
    UnknownKind(u64),
}

impl fmt::Display for MessageDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageDecodeError::NotAMessage(a) => {
                write!(f, "address {a} is outside the message window")
            }
            MessageDecodeError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
        }
    }
}

impl std::error::Error for MessageDecodeError {}

/// Encoder/decoder for the message protocol.
///
/// The decoder is stateful because 64-bit payloads span two transactions;
/// one codec instance must see the transaction stream in order (which is
/// how a bus snooper sees it).
///
/// # Example
///
/// ```
/// use cmpsim_trace::{Message, MessageCodec};
///
/// let mut codec = MessageCodec::new();
/// let txns = MessageCodec::encode(Message::InstructionsRetired(5_000_000_000), 0);
/// let mut decoded = None;
/// for t in &txns {
///     decoded = codec.decode(t).unwrap();
/// }
/// assert_eq!(decoded, Some(Message::InstructionsRetired(5_000_000_000)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MessageCodec {
    pending_instret_hi: u64,
    pending_cycles_hi: u64,
}

impl MessageCodec {
    /// Creates a codec with no pending high halves.
    pub fn new() -> Self {
        Self::default()
    }

    fn pack(kind: u64, payload: u64) -> Addr {
        debug_assert!(payload <= PAYLOAD_MASK);
        Addr::new(MSG_WINDOW_BASE | (kind << KIND_SHIFT) | (payload << PAYLOAD_SHIFT))
    }

    fn unpack(addr: Addr) -> Option<(u64, u64)> {
        let raw = addr.raw();
        if !(MSG_WINDOW_BASE..MSG_WINDOW_BASE + MSG_WINDOW_SIZE).contains(&raw) {
            return None;
        }
        let rel = raw - MSG_WINDOW_BASE;
        let kind = rel >> KIND_SHIFT;
        let payload = (rel >> PAYLOAD_SHIFT) & PAYLOAD_MASK;
        Some((kind, payload))
    }

    /// Encodes a message as one or two bus transactions stamped with
    /// `cycle`. Two transactions are produced only for 64-bit payloads
    /// whose high half is nonzero.
    pub fn encode(msg: Message, cycle: u64) -> Vec<FsbTransaction> {
        let mk =
            |kind, payload| FsbTransaction::new(cycle, FsbKind::Message, Self::pack(kind, payload));
        match msg {
            Message::Start => vec![mk(KIND_START, 0)],
            Message::Stop => vec![mk(KIND_STOP, 0)],
            Message::CoreId(id) => vec![mk(KIND_CORE_ID, u64::from(id))],
            Message::InstructionsRetired(v) => {
                let (hi, lo) = (v >> 32, v & PAYLOAD_MASK);
                if hi == 0 {
                    vec![mk(KIND_INSTRET_LO, lo)]
                } else {
                    vec![mk(KIND_INSTRET_HI, hi), mk(KIND_INSTRET_LO, lo)]
                }
            }
            Message::CyclesCompleted(v) => {
                let (hi, lo) = (v >> 32, v & PAYLOAD_MASK);
                if hi == 0 {
                    vec![mk(KIND_CYCLES_LO, lo)]
                } else {
                    vec![mk(KIND_CYCLES_HI, hi), mk(KIND_CYCLES_LO, lo)]
                }
            }
        }
    }

    /// Decodes one transaction.
    ///
    /// Returns `Ok(Some(msg))` when the transaction completes a message,
    /// `Ok(None)` when it is the high half of a payload still awaiting its
    /// low half.
    ///
    /// # Errors
    ///
    /// [`MessageDecodeError::NotAMessage`] if the address is outside the
    /// reserved window; [`MessageDecodeError::UnknownKind`] for undefined
    /// kind fields.
    pub fn decode(&mut self, txn: &FsbTransaction) -> Result<Option<Message>, MessageDecodeError> {
        let (kind, payload) =
            Self::unpack(txn.addr).ok_or(MessageDecodeError::NotAMessage(txn.addr))?;
        match kind {
            KIND_START => Ok(Some(Message::Start)),
            KIND_STOP => Ok(Some(Message::Stop)),
            KIND_CORE_ID => Ok(Some(Message::CoreId(payload as u32))),
            KIND_INSTRET_HI => {
                self.pending_instret_hi = payload;
                Ok(None)
            }
            KIND_INSTRET_LO => {
                let v = (self.pending_instret_hi << 32) | payload;
                self.pending_instret_hi = 0;
                Ok(Some(Message::InstructionsRetired(v)))
            }
            KIND_CYCLES_HI => {
                self.pending_cycles_hi = payload;
                Ok(None)
            }
            KIND_CYCLES_LO => {
                let v = (self.pending_cycles_hi << 32) | payload;
                self.pending_cycles_hi = 0;
                Ok(Some(Message::CyclesCompleted(v)))
            }
            k => Err(MessageDecodeError::UnknownKind(k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) -> Message {
        let mut codec = MessageCodec::new();
        let txns = MessageCodec::encode(msg, 0);
        let mut out = None;
        for t in &txns {
            out = codec.decode(t).unwrap();
        }
        out.expect("message should complete")
    }

    #[test]
    fn roundtrip_simple_messages() {
        assert_eq!(roundtrip(Message::Start), Message::Start);
        assert_eq!(roundtrip(Message::Stop), Message::Stop);
        assert_eq!(roundtrip(Message::CoreId(31)), Message::CoreId(31));
    }

    #[test]
    fn roundtrip_small_counter_uses_one_txn() {
        let txns = MessageCodec::encode(Message::InstructionsRetired(123), 0);
        assert_eq!(txns.len(), 1);
        assert_eq!(
            roundtrip(Message::InstructionsRetired(123)),
            Message::InstructionsRetired(123)
        );
    }

    #[test]
    fn roundtrip_large_counter_uses_two_txns() {
        let v = 217_800_000_000; // MDS instruction count from Table 2
        let txns = MessageCodec::encode(Message::InstructionsRetired(v), 0);
        assert_eq!(txns.len(), 2);
        assert_eq!(
            roundtrip(Message::InstructionsRetired(v)),
            Message::InstructionsRetired(v)
        );
    }

    #[test]
    fn roundtrip_cycles() {
        let v = u64::MAX - 17;
        assert_eq!(
            roundtrip(Message::CyclesCompleted(v)),
            Message::CyclesCompleted(v)
        );
    }

    #[test]
    fn hi_half_returns_none() {
        let mut codec = MessageCodec::new();
        let txns = MessageCodec::encode(Message::CyclesCompleted(1 << 40), 0);
        assert_eq!(codec.decode(&txns[0]).unwrap(), None);
        assert!(codec.decode(&txns[1]).unwrap().is_some());
    }

    #[test]
    fn hi_half_cleared_after_use() {
        let mut codec = MessageCodec::new();
        for t in &MessageCodec::encode(Message::CyclesCompleted(1 << 40), 0) {
            let _ = codec.decode(t).unwrap();
        }
        // A subsequent small value must not inherit the old high half.
        let txns = MessageCodec::encode(Message::CyclesCompleted(5), 0);
        assert_eq!(
            codec.decode(&txns[0]).unwrap(),
            Some(Message::CyclesCompleted(5))
        );
    }

    #[test]
    fn non_window_address_is_error() {
        let mut codec = MessageCodec::new();
        let t = FsbTransaction::new(0, FsbKind::ReadLine, Addr::new(0x1000));
        assert!(matches!(
            codec.decode(&t),
            Err(MessageDecodeError::NotAMessage(_))
        ));
    }

    #[test]
    fn unknown_kind_is_error() {
        let mut codec = MessageCodec::new();
        let t = FsbTransaction::new(
            0,
            FsbKind::Message,
            Addr::new(MSG_WINDOW_BASE | (9 << KIND_SHIFT)),
        );
        assert!(matches!(
            codec.decode(&t),
            Err(MessageDecodeError::UnknownKind(9))
        ));
    }

    #[test]
    fn message_addresses_are_line_aligned() {
        for msg in [
            Message::Start,
            Message::CoreId(7),
            Message::InstructionsRetired(0xDEAD_BEEF_CAFE),
        ] {
            for t in MessageCodec::encode(msg, 0) {
                assert_eq!(t.addr.raw() % 64, 0, "{msg:?} produced unaligned address");
            }
        }
    }

    #[test]
    fn encoded_transactions_classified_as_messages() {
        for t in MessageCodec::encode(Message::Start, 9) {
            assert!(t.is_message());
            assert_eq!(t.cycle, 9);
        }
    }
}
