//! The SoftSDV → Dragonhead co-simulation control protocol.
//!
//! §3.3 of the paper: *"Some memory transactions are predefined as messages
//! from SoftSDV to Dragonhead"*. The simulator communicates with the passive
//! cache emulator over the only channel a bus snooper can observe — memory
//! transactions — by reserving a high address window and encoding the
//! message kind and payload in the transaction address bits.
//!
//! Five messages exist, exactly the paper's list:
//!
//! 1. start emulation,
//! 2. stop emulation,
//! 3. core id,
//! 4. instructions retired,
//! 5. cycles completed.
//!
//! 64-bit payloads do not fit in the address bits of one transaction, so
//! they are carried by a *high-half* transaction followed by a *low-half*
//! transaction. The encoder omits the high half when it is zero; the decoder
//! treats a missing high half as zero.

use crate::addr::Addr;
use crate::fsb::{FsbKind, FsbTransaction};
use std::fmt;

/// Base of the reserved message window (64 TiB), far above any simulated
/// DRAM address.
pub const MSG_WINDOW_BASE: u64 = 1 << 46;

/// Size of the reserved message window.
pub const MSG_WINDOW_SIZE: u64 = 1 << 43;

const KIND_SHIFT: u32 = 38;
const PAYLOAD_SHIFT: u32 = 6; // keep message addresses line-aligned
const PAYLOAD_MASK: u64 = 0xFFFF_FFFF;

const KIND_START: u64 = 1;
const KIND_STOP: u64 = 2;
const KIND_CORE_ID: u64 = 3;
const KIND_INSTRET_LO: u64 = 4;
const KIND_INSTRET_HI: u64 = 5;
const KIND_CYCLES_LO: u64 = 6;
const KIND_CYCLES_HI: u64 = 7;

/// The raw wire-level kind of a message transaction, before any
/// protocol state is applied.
///
/// Exposed so tooling that perturbs or analyses the transaction stream
/// (fault injection, trace inspection) can classify messages without
/// running a stateful decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireKind {
    /// Start-emulation marker.
    Start,
    /// Stop-emulation marker.
    Stop,
    /// Core-id announcement.
    CoreId,
    /// Low half of an instructions-retired payload.
    InstretLo,
    /// High half of an instructions-retired payload.
    InstretHi,
    /// Low half of a cycles-completed payload.
    CyclesLo,
    /// High half of a cycles-completed payload.
    CyclesHi,
}

impl WireKind {
    /// Classifies a transaction's wire kind; `None` for data
    /// transactions and for message-window addresses with undefined
    /// kind bits.
    pub fn of(txn: &FsbTransaction) -> Option<WireKind> {
        let (kind, _) = MessageCodec::unpack(txn.addr)?;
        match kind {
            KIND_START => Some(WireKind::Start),
            KIND_STOP => Some(WireKind::Stop),
            KIND_CORE_ID => Some(WireKind::CoreId),
            KIND_INSTRET_LO => Some(WireKind::InstretLo),
            KIND_INSTRET_HI => Some(WireKind::InstretHi),
            KIND_CYCLES_LO => Some(WireKind::CyclesLo),
            KIND_CYCLES_HI => Some(WireKind::CyclesHi),
            _ => None,
        }
    }
}

/// Decoder protocol state: what the codec is waiting for.
///
/// The decoder is a state machine because 64-bit payloads span a
/// high-half/low-half transaction pair; between the two halves the
/// stream is in a vulnerable state a dropped or reordered transaction
/// can desynchronize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolState {
    /// No payload in flight; any well-formed message is accepted.
    #[default]
    Synced,
    /// Saw an instructions-retired high half; its low half must be the
    /// next message, else the pair is declared torn.
    AwaitInstretLo,
    /// Saw a cycles-completed high half; its low half must be the next
    /// message, else the pair is declared torn.
    AwaitCyclesLo,
}

/// Anomaly counters maintained by the decoder.
///
/// A real bus channel drops, reorders, and corrupts transactions; the
/// decoder counts every anomaly it survives so a run can report how
/// degraded its channel was (METICULOUS-style self-diagnosis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Completed messages decoded.
    pub messages: u64,
    /// Desynchronizations detected: a high half not followed by its
    /// matching low half (orphan high). The decoder recovers by
    /// discarding the orphan and resyncing on the interrupting message.
    pub desyncs: u64,
    /// Transactions quarantined: message-window addresses whose kind
    /// bits decode to nothing the protocol defines.
    pub quarantined: u64,
    /// Message transactions whose cycle stamp went backwards relative
    /// to the previous message.
    pub cycle_regressions: u64,
}

/// A co-simulation control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Message {
    /// Begin attributing bus traffic to the simulated workload.
    Start,
    /// Stop attributing bus traffic (e.g. the host OS is about to run).
    Stop,
    /// The virtual core that owns the current DEX time slice.
    CoreId(u32),
    /// Cumulative instructions retired by the current core, for
    /// instruction-synchronized statistics (MPKI).
    InstructionsRetired(u64),
    /// Cumulative simulated cycles completed, for time-synchronized
    /// statistics (miss rate over time).
    CyclesCompleted(u64),
}

/// Errors produced when decoding a message transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageDecodeError {
    /// The transaction address is not in the reserved window.
    NotAMessage(Addr),
    /// The kind field holds a value the protocol does not define.
    UnknownKind(u64),
}

impl fmt::Display for MessageDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageDecodeError::NotAMessage(a) => {
                write!(f, "address {a} is outside the message window")
            }
            MessageDecodeError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
        }
    }
}

impl std::error::Error for MessageDecodeError {}

/// Encoder/decoder for the message protocol.
///
/// The decoder is stateful because 64-bit payloads span two transactions;
/// one codec instance must see the transaction stream in order (which is
/// how a bus snooper sees it). It is an explicit protocol state machine
/// ([`ProtocolState`]) that *survives* a degraded channel: an orphan high
/// half (its low half dropped or displaced) is detected as a desync, the
/// pending half is discarded, and decoding resynchronizes on the very
/// message that interrupted the pair. Undefined kind bits are quarantined
/// rather than trusted. Every anomaly is counted in [`ProtocolStats`].
///
/// # Example
///
/// ```
/// use cmpsim_trace::{Message, MessageCodec};
///
/// let mut codec = MessageCodec::new();
/// let txns = MessageCodec::encode(Message::InstructionsRetired(5_000_000_000), 0);
/// let mut decoded = None;
/// for t in &txns {
///     decoded = codec.decode(t).unwrap();
/// }
/// assert_eq!(decoded, Some(Message::InstructionsRetired(5_000_000_000)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MessageCodec {
    state: ProtocolState,
    pending_hi: u64,
    stats: ProtocolStats,
    last_cycle: u64,
}

impl MessageCodec {
    /// Creates a codec in the [`ProtocolState::Synced`] state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current protocol state.
    pub fn state(&self) -> ProtocolState {
        self.state
    }

    /// Anomaly counters accumulated so far.
    pub fn stats(&self) -> &ProtocolStats {
        &self.stats
    }

    fn pack(kind: u64, payload: u64) -> Addr {
        debug_assert!(payload <= PAYLOAD_MASK);
        Addr::new(MSG_WINDOW_BASE | (kind << KIND_SHIFT) | (payload << PAYLOAD_SHIFT))
    }

    fn unpack(addr: Addr) -> Option<(u64, u64)> {
        let raw = addr.raw();
        if !(MSG_WINDOW_BASE..MSG_WINDOW_BASE + MSG_WINDOW_SIZE).contains(&raw) {
            return None;
        }
        let rel = raw - MSG_WINDOW_BASE;
        let kind = rel >> KIND_SHIFT;
        let payload = (rel >> PAYLOAD_SHIFT) & PAYLOAD_MASK;
        Some((kind, payload))
    }

    /// Encodes a message as one or two bus transactions stamped with
    /// `cycle`. Two transactions are produced only for 64-bit payloads
    /// whose high half is nonzero.
    pub fn encode(msg: Message, cycle: u64) -> Vec<FsbTransaction> {
        let mk =
            |kind, payload| FsbTransaction::new(cycle, FsbKind::Message, Self::pack(kind, payload));
        match msg {
            Message::Start => vec![mk(KIND_START, 0)],
            Message::Stop => vec![mk(KIND_STOP, 0)],
            Message::CoreId(id) => vec![mk(KIND_CORE_ID, u64::from(id))],
            Message::InstructionsRetired(v) => {
                let (hi, lo) = (v >> 32, v & PAYLOAD_MASK);
                if hi == 0 {
                    vec![mk(KIND_INSTRET_LO, lo)]
                } else {
                    vec![mk(KIND_INSTRET_HI, hi), mk(KIND_INSTRET_LO, lo)]
                }
            }
            Message::CyclesCompleted(v) => {
                let (hi, lo) = (v >> 32, v & PAYLOAD_MASK);
                if hi == 0 {
                    vec![mk(KIND_CYCLES_LO, lo)]
                } else {
                    vec![mk(KIND_CYCLES_HI, hi), mk(KIND_CYCLES_LO, lo)]
                }
            }
        }
    }

    /// Decodes one transaction through the protocol state machine.
    ///
    /// Returns `Ok(Some(msg))` when the transaction completes a message,
    /// `Ok(None)` when it is the high half of a payload still awaiting its
    /// low half.
    ///
    /// Recovery semantics on a degraded channel: a pending high half that
    /// is interrupted by any other well-formed message is an **orphan** —
    /// the desync is counted, the orphan discarded, and the interrupting
    /// message is decoded normally (resync within one message boundary).
    /// A lone low half pairs with zero, exactly as the encoder's
    /// omitted-zero-high-half convention requires.
    ///
    /// # Errors
    ///
    /// [`MessageDecodeError::NotAMessage`] if the address is outside the
    /// reserved window; [`MessageDecodeError::UnknownKind`] for undefined
    /// kind fields (the transaction is quarantined and the protocol state
    /// is preserved, so a corrupted transaction cannot tear a pair that a
    /// later low half would complete — except that the corrupted
    /// transaction may *be* that low half, which the orphan-high check
    /// catches on the next message).
    pub fn decode(&mut self, txn: &FsbTransaction) -> Result<Option<Message>, MessageDecodeError> {
        let (kind, payload) =
            Self::unpack(txn.addr).ok_or(MessageDecodeError::NotAMessage(txn.addr))?;

        if txn.cycle < self.last_cycle {
            self.stats.cycle_regressions += 1;
        } else {
            self.last_cycle = txn.cycle;
        }

        // Undefined kind bits: quarantine without touching pairing state.
        if !(KIND_START..=KIND_CYCLES_HI).contains(&kind) {
            self.stats.quarantined += 1;
            return Err(MessageDecodeError::UnknownKind(kind));
        }

        // Orphan-high detection: a payload pair in flight must complete
        // with its matching low half; anything else tore the pair.
        match self.state {
            ProtocolState::Synced => {}
            ProtocolState::AwaitInstretLo if kind == KIND_INSTRET_LO => {}
            ProtocolState::AwaitCyclesLo if kind == KIND_CYCLES_LO => {}
            ProtocolState::AwaitInstretLo | ProtocolState::AwaitCyclesLo => {
                self.stats.desyncs += 1;
                self.pending_hi = 0;
                self.state = ProtocolState::Synced;
            }
        }

        let complete = |stats: &mut ProtocolStats, msg| {
            stats.messages += 1;
            Ok(Some(msg))
        };
        match kind {
            KIND_START => complete(&mut self.stats, Message::Start),
            KIND_STOP => complete(&mut self.stats, Message::Stop),
            KIND_CORE_ID => complete(&mut self.stats, Message::CoreId(payload as u32)),
            KIND_INSTRET_HI => {
                self.pending_hi = payload;
                self.state = ProtocolState::AwaitInstretLo;
                Ok(None)
            }
            KIND_INSTRET_LO => {
                let v = (self.pending_hi << 32) | payload;
                self.pending_hi = 0;
                self.state = ProtocolState::Synced;
                complete(&mut self.stats, Message::InstructionsRetired(v))
            }
            KIND_CYCLES_HI => {
                self.pending_hi = payload;
                self.state = ProtocolState::AwaitCyclesLo;
                Ok(None)
            }
            KIND_CYCLES_LO => {
                let v = (self.pending_hi << 32) | payload;
                self.pending_hi = 0;
                self.state = ProtocolState::Synced;
                complete(&mut self.stats, Message::CyclesCompleted(v))
            }
            _ => unreachable!("kind range checked above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) -> Message {
        let mut codec = MessageCodec::new();
        let txns = MessageCodec::encode(msg, 0);
        let mut out = None;
        for t in &txns {
            out = codec.decode(t).unwrap();
        }
        out.expect("message should complete")
    }

    #[test]
    fn roundtrip_simple_messages() {
        assert_eq!(roundtrip(Message::Start), Message::Start);
        assert_eq!(roundtrip(Message::Stop), Message::Stop);
        assert_eq!(roundtrip(Message::CoreId(31)), Message::CoreId(31));
    }

    #[test]
    fn roundtrip_small_counter_uses_one_txn() {
        let txns = MessageCodec::encode(Message::InstructionsRetired(123), 0);
        assert_eq!(txns.len(), 1);
        assert_eq!(
            roundtrip(Message::InstructionsRetired(123)),
            Message::InstructionsRetired(123)
        );
    }

    #[test]
    fn roundtrip_large_counter_uses_two_txns() {
        let v = 217_800_000_000; // MDS instruction count from Table 2
        let txns = MessageCodec::encode(Message::InstructionsRetired(v), 0);
        assert_eq!(txns.len(), 2);
        assert_eq!(
            roundtrip(Message::InstructionsRetired(v)),
            Message::InstructionsRetired(v)
        );
    }

    #[test]
    fn roundtrip_cycles() {
        let v = u64::MAX - 17;
        assert_eq!(
            roundtrip(Message::CyclesCompleted(v)),
            Message::CyclesCompleted(v)
        );
    }

    #[test]
    fn hi_half_returns_none() {
        let mut codec = MessageCodec::new();
        let txns = MessageCodec::encode(Message::CyclesCompleted(1 << 40), 0);
        assert_eq!(codec.decode(&txns[0]).unwrap(), None);
        assert!(codec.decode(&txns[1]).unwrap().is_some());
    }

    #[test]
    fn hi_half_cleared_after_use() {
        let mut codec = MessageCodec::new();
        for t in &MessageCodec::encode(Message::CyclesCompleted(1 << 40), 0) {
            let _ = codec.decode(t).unwrap();
        }
        // A subsequent small value must not inherit the old high half.
        let txns = MessageCodec::encode(Message::CyclesCompleted(5), 0);
        assert_eq!(
            codec.decode(&txns[0]).unwrap(),
            Some(Message::CyclesCompleted(5))
        );
    }

    #[test]
    fn non_window_address_is_error() {
        let mut codec = MessageCodec::new();
        let t = FsbTransaction::new(0, FsbKind::ReadLine, Addr::new(0x1000));
        assert!(matches!(
            codec.decode(&t),
            Err(MessageDecodeError::NotAMessage(_))
        ));
    }

    #[test]
    fn unknown_kind_is_error() {
        let mut codec = MessageCodec::new();
        let t = FsbTransaction::new(
            0,
            FsbKind::Message,
            Addr::new(MSG_WINDOW_BASE | (9 << KIND_SHIFT)),
        );
        assert!(matches!(
            codec.decode(&t),
            Err(MessageDecodeError::UnknownKind(9))
        ));
    }

    #[test]
    fn message_addresses_are_line_aligned() {
        for msg in [
            Message::Start,
            Message::CoreId(7),
            Message::InstructionsRetired(0xDEAD_BEEF_CAFE),
        ] {
            for t in MessageCodec::encode(msg, 0) {
                assert_eq!(t.addr.raw() % 64, 0, "{msg:?} produced unaligned address");
            }
        }
    }

    #[test]
    fn encoded_transactions_classified_as_messages() {
        for t in MessageCodec::encode(Message::Start, 9) {
            assert!(t.is_message());
            assert_eq!(t.cycle, 9);
        }
    }

    #[test]
    fn wire_kind_classifies_without_state() {
        let pair = MessageCodec::encode(Message::CyclesCompleted(1 << 40), 0);
        assert_eq!(WireKind::of(&pair[0]), Some(WireKind::CyclesHi));
        assert_eq!(WireKind::of(&pair[1]), Some(WireKind::CyclesLo));
        let start = &MessageCodec::encode(Message::Start, 0)[0];
        assert_eq!(WireKind::of(start), Some(WireKind::Start));
        let data = FsbTransaction::new(0, FsbKind::ReadLine, Addr::new(0x40));
        assert_eq!(WireKind::of(&data), None);
        let junk = FsbTransaction::new(0, FsbKind::Message, Addr::new(MSG_WINDOW_BASE));
        assert_eq!(WireKind::of(&junk), None, "kind 0 is undefined");
    }

    #[test]
    fn orphan_high_is_detected_and_recovered() {
        let mut codec = MessageCodec::new();
        let pair = MessageCodec::encode(Message::InstructionsRetired(1 << 40), 0);
        // High half arrives, then its low half is lost and a core-id
        // message interrupts the pair.
        assert_eq!(codec.decode(&pair[0]).unwrap(), None);
        assert_eq!(codec.state(), ProtocolState::AwaitInstretLo);
        let interloper = &MessageCodec::encode(Message::CoreId(3), 1)[0];
        assert_eq!(codec.decode(interloper).unwrap(), Some(Message::CoreId(3)));
        assert_eq!(codec.stats().desyncs, 1);
        assert_eq!(codec.state(), ProtocolState::Synced);
        // The stale high half must not leak into the next counter.
        let small = &MessageCodec::encode(Message::InstructionsRetired(5), 2)[0];
        assert_eq!(
            codec.decode(small).unwrap(),
            Some(Message::InstructionsRetired(5))
        );
    }

    #[test]
    fn mismatched_low_half_tears_pair() {
        let mut codec = MessageCodec::new();
        let instret = MessageCodec::encode(Message::InstructionsRetired(1 << 40), 0);
        let cycles = MessageCodec::encode(Message::CyclesCompleted(7), 1);
        assert_eq!(codec.decode(&instret[0]).unwrap(), None);
        // A cycles low half interrupts the instret pair: desync, then the
        // cycles message itself decodes cleanly with a zero high half.
        assert_eq!(
            codec.decode(&cycles[0]).unwrap(),
            Some(Message::CyclesCompleted(7))
        );
        assert_eq!(codec.stats().desyncs, 1);
    }

    #[test]
    fn unknown_kind_preserves_pairing_state() {
        let mut codec = MessageCodec::new();
        let pair = MessageCodec::encode(Message::CyclesCompleted(1 << 40), 0);
        assert_eq!(codec.decode(&pair[0]).unwrap(), None);
        let junk = FsbTransaction::new(
            0,
            FsbKind::Message,
            Addr::new(MSG_WINDOW_BASE | (21 << KIND_SHIFT)),
        );
        assert!(codec.decode(&junk).is_err());
        assert_eq!(codec.stats().quarantined, 1);
        // The pair still completes: the corrupted transaction was not
        // mistaken for its low half.
        assert_eq!(
            codec.decode(&pair[1]).unwrap(),
            Some(Message::CyclesCompleted(1 << 40))
        );
        assert_eq!(codec.stats().desyncs, 0);
    }

    #[test]
    fn cycle_regressions_are_counted() {
        let mut codec = MessageCodec::new();
        for (cycle, expect_regressions) in [(10, 0), (20, 0), (15, 1), (20, 1), (5, 2)] {
            let t = &MessageCodec::encode(Message::Start, cycle)[0];
            let _ = codec.decode(t).unwrap();
            assert_eq!(codec.stats().cycle_regressions, expect_regressions);
        }
    }

    #[test]
    fn stats_count_completed_messages() {
        let mut codec = MessageCodec::new();
        for msg in [
            Message::Start,
            Message::CoreId(1),
            Message::InstructionsRetired(1 << 40),
            Message::Stop,
        ] {
            for t in MessageCodec::encode(msg, 0) {
                let _ = codec.decode(&t).unwrap();
            }
        }
        assert_eq!(codec.stats().messages, 4);
        assert_eq!(codec.stats().desyncs, 0);
    }
}
