//! A small deterministic random-number generator.
//!
//! Simulations must be bit-reproducible: the same seed must produce the
//! same synthetic dataset, the same trace, and the same miss counts on
//! every platform and in every release. We therefore implement PCG32
//! (O'Neill 2014, `PCG-XSH-RR 64/32`) directly instead of depending on an
//! external RNG whose stream could change between versions.

/// PCG32 generator (64-bit state, 32-bit output).
///
/// # Example
///
/// ```
/// use cmpsim_trace::Pcg32;
/// let mut a = Pcg32::seed(42);
/// let mut b = Pcg32::seed(42);
/// assert_eq!(a.next_u32(), b.next_u32()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;
const PCG_DEFAULT_STREAM: u64 = 1_442_695_040_888_963_407;

impl Pcg32 {
    /// Creates a generator from a seed, using the reference stream.
    pub fn seed(seed: u64) -> Self {
        Self::seed_stream(seed, PCG_DEFAULT_STREAM >> 1)
    }

    /// Creates a generator from a seed and stream id; different streams
    /// with the same seed are statistically independent. Used to give each
    /// workload thread its own stream.
    pub fn seed_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        let _ = rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        let _ = rng.next_u32();
        rng
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform integer in `[0, bound)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        if bound <= u64::from(u32::MAX) {
            u64::from(self.below_u32(bound as u32))
        } else {
            self.below_u64(bound)
        }
    }

    #[inline]
    fn below_u32(&mut self, bound: u32) -> u32 {
        // Lemire's unbiased multiply-shift method.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u32();
            let m = u64::from(x) * u64::from(bound);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    #[inline]
    fn below_u64(&mut self, bound: u64) -> u64 {
        // below_u32's Lemire rejection widened to 64 bits: a plain
        // `next_u64() % bound` is biased once bound exceeds u32::MAX
        // (low results become up to 2x as likely near 2^63).
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A draw from Zipf(`n`, `s`) in `[0, n)`, by inverse-CDF over
    /// precomputed weights. For repeated draws prefer [`ZipfTable`].
    pub fn zipf_once(&mut self, n: u64, s: f64) -> u64 {
        ZipfTable::new(n as usize, s).sample(self) as u64
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Precomputed inverse-CDF sampler for a Zipf distribution.
///
/// Transactional datasets like Kosarak (the FIMI input) have heavily skewed
/// item frequencies; Zipf sampling reproduces that skew in the synthetic
/// dataset generators.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds a sampler over ranks `0..n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most frequent.
    pub fn sample(&self, rng: &mut Pcg32) -> usize {
        let u = rng.f64();
        // Infallible: the CDF is built from finite positive weights and
        // `rng.f64()` is in [0, 1), so no comparison involves a NaN.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg32::seed(7);
        let mut b = Pcg32::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = Pcg32::seed_stream(7, 1);
        let mut b = Pcg32::seed_stream(7, 2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "independent streams should rarely collide");
    }

    #[test]
    fn reference_vector() {
        // First outputs of the PCG32 reference implementation with
        // seed=42, stream=54 (from the pcg-random.org demo program).
        let mut rng = Pcg32::seed_stream(42, 54);
        let expected: [u32; 6] = [
            0xa15c_02b7,
            0x7b47_f409,
            0xba1d_3330,
            0x83d2_f293,
            0xbfa4_784b,
            0xcbed_606e,
        ];
        for e in expected {
            assert_eq!(rng.next_u32(), e);
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = Pcg32::seed(1);
        for bound in [1u64, 2, 3, 10, 1000, 1 << 33] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn huge_bounds_use_rejection_not_modulo() {
        // Above u32::MAX the old code took a `next_u64() % bound`
        // shortcut, which is biased (for bound near 2^63, results below
        // 2^64 mod bound are twice as likely). The Lemire multiply-shift
        // draw must produce a different sequence than the modulo
        // shortcut while staying in range.
        let bound = (1u64 << 63) + 12345;
        let mut lemire = Pcg32::seed(9);
        let mut modulo = Pcg32::seed(9);
        let mut diverged = 0;
        for _ in 0..64 {
            let l = lemire.below(bound);
            let m = modulo.next_u64() % bound;
            assert!(l < bound);
            if l != m {
                diverged += 1;
            }
        }
        assert!(
            diverged > 32,
            "huge-bound draws still follow the modulo shortcut ({diverged}/64 differ)"
        );
        // The <= u32::MAX path is untouched: it must keep matching the
        // 32-bit Lemire draw exactly so golden files stay valid.
        let mut a = Pcg32::seed(10);
        let mut b = Pcg32::seed(10);
        for _ in 0..64 {
            assert_eq!(
                a.below(u64::from(u32::MAX)),
                u64::from(b.below_u32(u32::MAX))
            );
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut rng = Pcg32::seed(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_bounds() {
        let mut rng = Pcg32::seed(3);
        for _ in 0..200 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Pcg32::seed(4);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = Pcg32::seed(5);
        let mean: f64 = (0..10_000).map(|_| rng.f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg32::seed(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn zipf_is_skewed() {
        let table = ZipfTable::new(1000, 1.0);
        let mut rng = Pcg32::seed(7);
        let mut rank0 = 0;
        let mut tail = 0;
        for _ in 0..10_000 {
            let r = table.sample(&mut rng);
            if r == 0 {
                rank0 += 1;
            }
            if r >= 500 {
                tail += 1;
            }
        }
        assert!(rank0 > 800, "rank 0 drawn {rank0} times");
        assert!(tail < 2000, "tail drawn {tail} times");
    }

    #[test]
    fn zipf_sample_in_support() {
        let table = ZipfTable::new(17, 1.2);
        let mut rng = Pcg32::seed(8);
        for _ in 0..500 {
            assert!(table.sample(&mut rng) < 17);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::seed(9);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle changed order");
    }
}
