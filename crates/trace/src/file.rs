//! Binary FSB-trace serialization.
//!
//! The co-simulation can record the exact transaction stream Dragonhead
//! observed and replay it later against different emulator
//! configurations — the software equivalent of capturing a logic-analyzer
//! trace. The format is a compact delta/varint encoding: traces are
//! dominated by small cycle deltas and spatially local addresses, so the
//! typical transaction costs 3–6 bytes instead of 17.
//!
//! Format: magic `CMPT` + version byte, then per transaction:
//! a tag byte (2 bits kind, 6 bits reserved), a varint cycle delta, and a
//! varint zigzag-encoded line-address delta.

use crate::addr::Addr;
use crate::fsb::{FsbKind, FsbTransaction};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"CMPT";
const VERSION: u8 = 1;

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
        v |= u64::from(buf[0] & 0x7F) << shift;
        if buf[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn kind_code(kind: FsbKind) -> u8 {
    match kind {
        FsbKind::ReadLine => 0,
        FsbKind::ReadInvalidateLine => 1,
        FsbKind::WriteLine => 2,
        FsbKind::Message => 3,
    }
}

fn code_kind(code: u8) -> io::Result<FsbKind> {
    Ok(match code {
        0 => FsbKind::ReadLine,
        1 => FsbKind::ReadInvalidateLine,
        2 => FsbKind::WriteLine,
        3 => FsbKind::Message,
        c => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad kind code {c}"),
            ))
        }
    })
}

/// Streaming writer for FSB traces.
///
/// Generic writers can be passed by `&mut` reference
/// ([C-RW-VALUE]): `TraceWriter::new(&mut my_vec)?` works.
///
/// # Example
///
/// ```
/// use cmpsim_trace::{Addr, FsbKind, FsbTransaction};
/// use cmpsim_trace::file::{TraceReader, TraceWriter};
///
/// # fn main() -> std::io::Result<()> {
/// let mut buf = Vec::new();
/// let mut w = TraceWriter::new(&mut buf)?;
/// w.write(&FsbTransaction::new(5, FsbKind::ReadLine, Addr::new(0x1000)))?;
/// w.write(&FsbTransaction::new(7, FsbKind::WriteLine, Addr::new(0x1040)))?;
/// let _ = w.finish().unwrap();
/// let txns: Vec<_> = TraceReader::new(buf.as_slice())?
///     .collect::<std::io::Result<_>>()?;
/// assert_eq!(txns.len(), 2);
/// assert_eq!(txns[1].addr, Addr::new(0x1040));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter<W> {
    out: W,
    last_cycle: u64,
    last_line: i64,
    count: u64,
}

/// Line granularity used for address deltas (the minimum bus transfer).
const LINE: u64 = 64;

impl<W: Write> TraceWriter<W> {
    /// Creates a writer, emitting the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(MAGIC)?;
        out.write_all(&[VERSION])?;
        Ok(TraceWriter {
            out,
            last_cycle: 0,
            last_line: 0,
            count: 0,
        })
    }

    /// Appends one transaction.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; transactions must have non-decreasing
    /// cycles (earlier cycles are clamped forward).
    pub fn write(&mut self, txn: &FsbTransaction) -> io::Result<()> {
        let cycle = txn.cycle.max(self.last_cycle);
        let line = (txn.addr.raw() / LINE) as i64;
        self.out.write_all(&[kind_code(txn.kind)])?;
        write_varint(&mut self.out, cycle - self.last_cycle)?;
        write_varint(&mut self.out, zigzag(line - self.last_line))?;
        self.last_cycle = cycle;
        self.last_line = line;
        self.count += 1;
        Ok(())
    }

    /// Transactions written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming reader for FSB traces; iterates transactions.
#[derive(Debug)]
pub struct TraceReader<R> {
    input: R,
    last_cycle: u64,
    last_line: i64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, validating the header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad magic or unsupported version.
    pub fn new(mut input: R) -> io::Result<Self> {
        let mut header = [0u8; 5];
        input.read_exact(&mut header)?;
        if &header[..4] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        if header[4] != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {}", header[4]),
            ));
        }
        Ok(TraceReader {
            input,
            last_cycle: 0,
            last_line: 0,
            done: false,
        })
    }

    fn read_one(&mut self) -> io::Result<Option<FsbTransaction>> {
        let mut tag = [0u8; 1];
        match self.input.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let kind = code_kind(tag[0])?;
        self.last_cycle += read_varint(&mut self.input)?;
        self.last_line += unzigzag(read_varint(&mut self.input)?);
        if self.last_line < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "negative address",
            ));
        }
        Ok(Some(FsbTransaction::new(
            self.last_cycle,
            kind,
            Addr::new(self.last_line as u64 * LINE),
        )))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<FsbTransaction>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_one() {
            Ok(Some(t)) => Some(Ok(t)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    fn roundtrip(txns: &[FsbTransaction]) -> Vec<FsbTransaction> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        for t in txns {
            w.write(t).unwrap();
        }
        assert_eq!(w.count(), txns.len() as u64);
        let _ = w.finish().unwrap();
        TraceReader::new(buf.as_slice())
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap()
    }

    #[test]
    fn empty_trace_roundtrips() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn simple_roundtrip() {
        let txns = vec![
            FsbTransaction::new(1, FsbKind::ReadLine, Addr::new(0x1000)),
            FsbTransaction::new(5, FsbKind::WriteLine, Addr::new(0x2000)),
            FsbTransaction::new(5, FsbKind::ReadInvalidateLine, Addr::new(0x1000)),
        ];
        assert_eq!(roundtrip(&txns), txns);
    }

    #[test]
    fn random_stream_roundtrips() {
        let mut rng = Pcg32::seed(5);
        let mut cycle = 0u64;
        let txns: Vec<FsbTransaction> = (0..5_000)
            .map(|_| {
                cycle += rng.below(1000);
                let kind = match rng.below(3) {
                    0 => FsbKind::ReadLine,
                    1 => FsbKind::ReadInvalidateLine,
                    _ => FsbKind::WriteLine,
                };
                FsbTransaction::new(cycle, kind, Addr::new(rng.below(1 << 32) & !63))
            })
            .collect();
        assert_eq!(roundtrip(&txns), txns);
    }

    #[test]
    fn compression_beats_naive_encoding() {
        // Sequential streaming with small cycle deltas: far below the
        // naive 17 bytes per transaction.
        let txns: Vec<FsbTransaction> = (0..10_000u64)
            .map(|i| FsbTransaction::new(i * 3, FsbKind::ReadLine, Addr::new(i * 64)))
            .collect();
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        for t in &txns {
            w.write(t).unwrap();
        }
        let _ = w.finish().unwrap();
        assert!(
            buf.len() < txns.len() * 5,
            "{} bytes for {} transactions",
            buf.len(),
            txns.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01".to_vec();
        assert!(TraceReader::new(buf.as_slice()).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let buf = b"CMPT\x09".to_vec();
        assert!(TraceReader::new(buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_body_is_error() {
        let txns = [FsbTransaction::new(
            100,
            FsbKind::ReadLine,
            Addr::new(0x40_0000),
        )];
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        w.write(&txns[0]).unwrap();
        let _ = w.finish().unwrap();
        buf.truncate(buf.len() - 1);
        let out: Vec<io::Result<FsbTransaction>> =
            TraceReader::new(buf.as_slice()).unwrap().collect();
        assert!(out.last().unwrap().is_err());
    }

    #[test]
    fn message_window_addresses_roundtrip() {
        // Messages live at huge addresses; the zigzag delta handles the
        // jump up and back down.
        use crate::message::{Message, MessageCodec};
        let mut txns = MessageCodec::encode(Message::InstructionsRetired(1 << 40), 3);
        txns.push(FsbTransaction::new(4, FsbKind::ReadLine, Addr::new(0x1000)));
        assert_eq!(roundtrip(&txns), txns);
    }
}
