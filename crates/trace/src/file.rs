//! Binary FSB-trace serialization.
//!
//! The co-simulation can record the exact transaction stream Dragonhead
//! observed and replay it later against different emulator
//! configurations — the software equivalent of capturing a logic-analyzer
//! trace. The format is a compact delta/varint encoding: traces are
//! dominated by small cycle deltas and spatially local addresses, so the
//! typical transaction costs 3–6 bytes instead of 17.
//!
//! Format (v2): magic `CMPT` + version byte, then per transaction:
//! a tag byte (2 bits kind, 6 bits reserved), a varint cycle delta, and a
//! varint zigzag-encoded line-address delta. The body is terminated by a
//! footer — sentinel tag `0xFF`, a varint transaction count, and the
//! 64-bit FNV-1a checksum of the body bytes (fixed little-endian) — so a
//! torn capture is distinguishable from a complete shorter trace. The
//! same FNV-1a constants seal the runner's result-cache and journal
//! records. Version-1 traces (no footer) are still readable; they end at
//! EOF and offer no torn-file detection.
//!
//! # Interplay with `cmpsim-faults`
//!
//! The writer requires non-decreasing cycles: a transaction whose cycle
//! stamp went backwards (as produced by cmpsim-faults cycle-jitter or
//! reorder injection) is clamped forward to the previous cycle, so a
//! fault-injected stream round-trips to a *different* — monotone —
//! stream. Every clamp is counted and exposed via
//! [`TraceWriter::clamped`]; a clean platform stream is monotone by
//! construction, so capture/replay byte-identity tests assert the
//! counter is zero before trusting a recorded trace.

use crate::addr::Addr;
use crate::fsb::{FsbKind, FsbTransaction};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"CMPT";
/// Current trace format version (v2: checksummed footer).
const VERSION: u8 = 2;
/// Legacy footer-less format, still readable.
const VERSION_V1: u8 = 1;
/// Footer sentinel: not a valid kind code, so a v1 reader would reject
/// it and a v2 reader knows the body is complete.
const FOOTER_TAG: u8 = 0xFF;

/// FNV-1a 64-bit offset basis — same pinned constants as the runner's
/// record codec (`cmpsim-runner::hash`), duplicated here because the
/// trace crate sits below the runner in the dependency order.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a64_step(hash: u64, byte: u8) -> u64 {
    (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME)
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
        v |= u64::from(buf[0] & 0x7F) << shift;
        if buf[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn kind_code(kind: FsbKind) -> u8 {
    match kind {
        FsbKind::ReadLine => 0,
        FsbKind::ReadInvalidateLine => 1,
        FsbKind::WriteLine => 2,
        FsbKind::Message => 3,
    }
}

fn code_kind(code: u8) -> io::Result<FsbKind> {
    Ok(match code {
        0 => FsbKind::ReadLine,
        1 => FsbKind::ReadInvalidateLine,
        2 => FsbKind::WriteLine,
        3 => FsbKind::Message,
        c => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad kind code {c}"),
            ))
        }
    })
}

/// Streaming writer for FSB traces.
///
/// Generic writers can be passed by `&mut` reference
/// ([C-RW-VALUE]): `TraceWriter::new(&mut my_vec)?` works.
///
/// Dropping the writer without calling [`finish`](Self::finish) leaves
/// the trace without its footer: a v2 reader rejects it as torn, which
/// is exactly what a crash mid-capture should look like.
///
/// # Example
///
/// ```
/// use cmpsim_trace::{Addr, FsbKind, FsbTransaction};
/// use cmpsim_trace::file::{TraceReader, TraceWriter};
///
/// # fn main() -> std::io::Result<()> {
/// let mut buf = Vec::new();
/// let mut w = TraceWriter::new(&mut buf)?;
/// w.write(&FsbTransaction::new(5, FsbKind::ReadLine, Addr::new(0x1000)))?;
/// w.write(&FsbTransaction::new(7, FsbKind::WriteLine, Addr::new(0x1040)))?;
/// let _ = w.finish().unwrap();
/// let txns: Vec<_> = TraceReader::new(buf.as_slice())?
///     .collect::<std::io::Result<_>>()?;
/// assert_eq!(txns.len(), 2);
/// assert_eq!(txns[1].addr, Addr::new(0x1040));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter<W> {
    out: W,
    last_cycle: u64,
    last_line: i64,
    count: u64,
    clamped: u64,
    hash: u64,
}

/// Line granularity used for address deltas (the minimum bus transfer).
const LINE: u64 = 64;

impl<W: Write> TraceWriter<W> {
    /// Creates a writer, emitting the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(MAGIC)?;
        out.write_all(&[VERSION])?;
        Ok(TraceWriter {
            out,
            last_cycle: 0,
            last_line: 0,
            count: 0,
            clamped: 0,
            hash: FNV_OFFSET,
        })
    }

    /// Writes body bytes, folding them into the running footer checksum.
    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        for &b in bytes {
            self.hash = fnv1a64_step(self.hash, b);
        }
        self.out.write_all(bytes)
    }

    /// Appends one transaction.
    ///
    /// Transactions must have non-decreasing cycles; an earlier cycle is
    /// clamped forward to the previous one and counted in
    /// [`clamped`](Self::clamped) (see the module docs on
    /// `cmpsim-faults` interplay).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&mut self, txn: &FsbTransaction) -> io::Result<()> {
        if txn.cycle < self.last_cycle {
            self.clamped += 1;
        }
        let cycle = txn.cycle.max(self.last_cycle);
        let line = (txn.addr.raw() / LINE) as i64;
        // Encode into a stack scratch (1 tag + two ≤10-byte varints) so
        // the checksum fold and the write happen in one pass.
        let mut scratch = [0u8; 21];
        let mut cur: &mut [u8] = &mut scratch;
        cur.write_all(&[kind_code(txn.kind)])?;
        write_varint(&mut cur, cycle - self.last_cycle)?;
        write_varint(&mut cur, zigzag(line - self.last_line))?;
        let used = 21 - cur.len();
        self.put(&scratch[..used])?;
        self.last_cycle = cycle;
        self.last_line = line;
        self.count += 1;
        Ok(())
    }

    /// Transactions written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Transactions whose cycle stamp went backwards and was clamped
    /// forward. Zero on a clean (monotone) platform stream; nonzero
    /// means the input was perturbed (e.g. by `cmpsim-faults`) and the
    /// trace is **not** a faithful round-trip of it.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Writes the footer (sentinel + transaction count + body
    /// checksum), flushes, and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.write_all(&[FOOTER_TAG])?;
        write_varint(&mut self.out, self.count)?;
        self.out.write_all(&self.hash.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming reader for FSB traces; iterates transactions.
///
/// Reads the current (v2) format and the legacy footer-less v1 format.
/// For v2, hitting end-of-file before the footer — or a footer whose
/// transaction count or body checksum disagrees with what was read — is
/// an `InvalidData` error: a torn capture must not be mistaken for a
/// complete shorter trace. v1 traces simply end at EOF.
#[derive(Debug)]
pub struct TraceReader<R> {
    input: R,
    last_cycle: u64,
    last_line: i64,
    done: bool,
    version: u8,
    count: u64,
    hash: u64,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, validating the header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad magic or unsupported version.
    pub fn new(mut input: R) -> io::Result<Self> {
        let mut header = [0u8; 5];
        input.read_exact(&mut header)?;
        if &header[..4] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        if header[4] != VERSION && header[4] != VERSION_V1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {}", header[4]),
            ));
        }
        Ok(TraceReader {
            input,
            last_cycle: 0,
            last_line: 0,
            done: false,
            version: header[4],
            count: 0,
            hash: FNV_OFFSET,
        })
    }

    /// The trace format version declared in the header.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Reads one body byte, folding it into the running checksum.
    fn body_byte(&mut self) -> io::Result<u8> {
        let mut buf = [0u8; 1];
        self.input.read_exact(&mut buf)?;
        self.hash = fnv1a64_step(self.hash, buf[0]);
        Ok(buf[0])
    }

    /// Reads a body varint through the checksum.
    fn body_varint(&mut self) -> io::Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.body_byte()?;
            if shift >= 64 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "varint too long",
                ));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Verifies the v2 footer after its sentinel tag has been consumed.
    fn verify_footer(&mut self) -> io::Result<()> {
        let count = read_varint(&mut self.input)?;
        let mut sum = [0u8; 8];
        self.input.read_exact(&mut sum)?;
        if count != self.count {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "trace footer count mismatch: footer says {count}, body held {}",
                    self.count
                ),
            ));
        }
        if u64::from_le_bytes(sum) != self.hash {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trace footer checksum mismatch",
            ));
        }
        let mut trailing = [0u8; 1];
        match self.input.read_exact(&mut trailing) {
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(()),
            Ok(()) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing data after trace footer",
            )),
            Err(e) => Err(e),
        }
    }

    fn read_one(&mut self) -> io::Result<Option<FsbTransaction>> {
        let mut tag = [0u8; 1];
        match self.input.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                if self.version >= VERSION {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "torn trace: ended before its footer",
                    ));
                }
                return Ok(None);
            }
            Err(e) => return Err(e),
        }
        if self.version >= VERSION && tag[0] == FOOTER_TAG {
            self.verify_footer()?;
            return Ok(None);
        }
        self.hash = fnv1a64_step(self.hash, tag[0]);
        let kind = code_kind(tag[0])?;
        self.last_cycle += self.body_varint()?;
        self.last_line += unzigzag(self.body_varint()?);
        if self.last_line < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "negative address",
            ));
        }
        self.count += 1;
        Ok(Some(FsbTransaction::new(
            self.last_cycle,
            kind,
            Addr::new(self.last_line as u64 * LINE),
        )))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<FsbTransaction>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_one() {
            Ok(Some(t)) => Some(Ok(t)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    fn encode(txns: &[FsbTransaction]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        for t in txns {
            w.write(t).unwrap();
        }
        assert_eq!(w.count(), txns.len() as u64);
        let _ = w.finish().unwrap();
        buf
    }

    fn decode(buf: &[u8]) -> io::Result<Vec<FsbTransaction>> {
        TraceReader::new(buf)?.collect()
    }

    fn roundtrip(txns: &[FsbTransaction]) -> Vec<FsbTransaction> {
        decode(&encode(txns)).unwrap()
    }

    /// Bytes the footer of a trace holding `count` transactions occupies.
    fn footer_len(count: u64) -> usize {
        let mut v = Vec::new();
        write_varint(&mut v, count).unwrap();
        1 + v.len() + 8
    }

    #[test]
    fn empty_trace_roundtrips() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn simple_roundtrip() {
        let txns = vec![
            FsbTransaction::new(1, FsbKind::ReadLine, Addr::new(0x1000)),
            FsbTransaction::new(5, FsbKind::WriteLine, Addr::new(0x2000)),
            FsbTransaction::new(5, FsbKind::ReadInvalidateLine, Addr::new(0x1000)),
        ];
        assert_eq!(roundtrip(&txns), txns);
    }

    #[test]
    fn random_stream_roundtrips() {
        let mut rng = Pcg32::seed(5);
        let mut cycle = 0u64;
        let txns: Vec<FsbTransaction> = (0..5_000)
            .map(|_| {
                cycle += rng.below(1000);
                let kind = match rng.below(3) {
                    0 => FsbKind::ReadLine,
                    1 => FsbKind::ReadInvalidateLine,
                    _ => FsbKind::WriteLine,
                };
                FsbTransaction::new(cycle, kind, Addr::new(rng.below(1 << 32) & !63))
            })
            .collect();
        assert_eq!(roundtrip(&txns), txns);
    }

    #[test]
    fn compression_beats_naive_encoding() {
        // Sequential streaming with small cycle deltas: far below the
        // naive 17 bytes per transaction.
        let txns: Vec<FsbTransaction> = (0..10_000u64)
            .map(|i| FsbTransaction::new(i * 3, FsbKind::ReadLine, Addr::new(i * 64)))
            .collect();
        let buf = encode(&txns);
        assert!(
            buf.len() < txns.len() * 5,
            "{} bytes for {} transactions",
            buf.len(),
            txns.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01".to_vec();
        assert!(TraceReader::new(buf.as_slice()).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let buf = b"CMPT\x09".to_vec();
        assert!(TraceReader::new(buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_body_is_error() {
        let txns = [FsbTransaction::new(
            100,
            FsbKind::ReadLine,
            Addr::new(0x40_0000),
        )];
        let mut buf = encode(&txns);
        buf.truncate(buf.len() - footer_len(1) - 1);
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn clean_streams_write_zero_clamps() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        for c in [1u64, 5, 5, 9] {
            w.write(&FsbTransaction::new(
                c,
                FsbKind::ReadLine,
                Addr::new(c * 64),
            ))
            .unwrap();
        }
        assert_eq!(w.clamped(), 0);
    }

    #[test]
    fn backwards_cycles_are_clamped_and_counted() {
        // A cmpsim-faults style jittered/reordered stream: cycles go
        // backwards twice. The writer clamps both forward — the trace
        // differs from the input — and says so via the counter.
        let txns = [
            FsbTransaction::new(100, FsbKind::ReadLine, Addr::new(0x1000)),
            FsbTransaction::new(40, FsbKind::WriteLine, Addr::new(0x2000)),
            FsbTransaction::new(150, FsbKind::ReadLine, Addr::new(0x3000)),
            FsbTransaction::new(149, FsbKind::Message, Addr::new(0x4000)),
        ];
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        for t in &txns {
            w.write(t).unwrap();
        }
        assert_eq!(w.clamped(), 2);
        let _ = w.finish().unwrap();
        let out = decode(&buf).unwrap();
        let cycles: Vec<u64> = out.iter().map(|t| t.cycle).collect();
        assert_eq!(cycles, [100, 100, 150, 150], "clamped forward, monotone");
    }

    #[test]
    fn torn_v2_trace_missing_footer_rejected() {
        let txns = [FsbTransaction::new(7, FsbKind::ReadLine, Addr::new(0x40))];
        let mut buf = encode(&txns);
        // Strip the whole footer: the body alone is a valid v1 trace,
        // but v2 must treat it as torn.
        buf.truncate(buf.len() - footer_len(1));
        let err = decode(&buf).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
    }

    #[test]
    fn torn_v2_trace_partial_footer_rejected() {
        let txns = [FsbTransaction::new(7, FsbKind::ReadLine, Addr::new(0x40))];
        let mut buf = encode(&txns);
        buf.truncate(buf.len() - 3);
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn footer_count_mismatch_rejected() {
        let txns = [FsbTransaction::new(7, FsbKind::ReadLine, Addr::new(0x40))];
        let mut buf = encode(&txns);
        // The count varint sits right after the footer sentinel; the
        // checksum does not cover the footer, so only the count check
        // can catch this.
        let pos = buf.len() - 9;
        assert_eq!(buf[pos - 1], FOOTER_TAG);
        buf[pos] = 2;
        let err = decode(&buf).unwrap_err();
        assert!(err.to_string().contains("count mismatch"), "{err}");
    }

    #[test]
    fn footer_checksum_mismatch_rejected() {
        let txns = [
            FsbTransaction::new(7, FsbKind::ReadLine, Addr::new(0x40)),
            FsbTransaction::new(9, FsbKind::WriteLine, Addr::new(0x80)),
        ];
        let mut buf = encode(&txns);
        let last = buf.len() - 1;
        buf[last] ^= 0xA5;
        let err = decode(&buf).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn corrupted_body_byte_detected() {
        // Flip a body bit that still decodes as plausible transactions:
        // without the footer checksum this corruption was silent.
        let txns: Vec<FsbTransaction> = (0..100u64)
            .map(|i| FsbTransaction::new(i * 2, FsbKind::ReadLine, Addr::new(i * 64)))
            .collect();
        let mut buf = encode(&txns);
        buf[20] ^= 0x01;
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn trailing_data_after_footer_rejected() {
        let txns = [FsbTransaction::new(7, FsbKind::ReadLine, Addr::new(0x40))];
        let mut buf = encode(&txns);
        buf.push(0);
        let err = decode(&buf).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn v1_traces_still_read() {
        let txns = vec![
            FsbTransaction::new(1, FsbKind::ReadLine, Addr::new(0x1000)),
            FsbTransaction::new(5, FsbKind::Message, Addr::new(crate::MSG_WINDOW_BASE)),
            FsbTransaction::new(5, FsbKind::WriteLine, Addr::new(0x2000)),
        ];
        // A v1 trace is exactly the v2 body with the old version byte
        // and no footer.
        let mut buf = encode(&txns);
        buf.truncate(buf.len() - footer_len(txns.len() as u64));
        buf[4] = VERSION_V1;
        let r = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.version(), VERSION_V1);
        assert_eq!(r.collect::<io::Result<Vec<_>>>().unwrap(), txns);
    }

    #[test]
    fn v1_footer_sentinel_is_a_bad_kind() {
        // 0xFF was never a valid v1 tag, so the sentinel cannot be
        // mistaken for data by either version's reader.
        let mut buf = b"CMPT\x01".to_vec();
        buf.push(FOOTER_TAG);
        let err = decode(&buf).unwrap_err();
        assert!(err.to_string().contains("bad kind code 255"), "{err}");
    }

    #[test]
    fn message_window_addresses_roundtrip() {
        // Messages live at huge addresses; the zigzag delta handles the
        // jump up and back down.
        use crate::message::{Message, MessageCodec};
        let mut txns = MessageCodec::encode(Message::InstructionsRetired(1 << 40), 3);
        txns.push(FsbTransaction::new(4, FsbKind::ReadLine, Addr::new(0x1000)));
        assert_eq!(roundtrip(&txns), txns);
    }

    #[test]
    fn extreme_address_streams_roundtrip_with_identical_message_payloads() {
        // Property test over the codec's worst cases: message-window
        // addresses near 1 << 46 interleaved with far-apart data lines
        // (maximal forward/backward line deltas), all four FsbKinds.
        // Beyond txn equality, the decoded stream must drive a
        // MessageCodec to the *same* payloads as the original — the
        // invariant capture/replay's per-core attribution rests on.
        use crate::message::{Message, MessageCodec};

        fn decode_messages(txns: &[FsbTransaction]) -> Vec<Message> {
            let mut codec = MessageCodec::new();
            let mut out = Vec::new();
            for t in txns.iter().filter(|t| t.kind == FsbKind::Message) {
                if let Ok(Some(m)) = codec.decode(t) {
                    out.push(m);
                }
            }
            assert_eq!(codec.stats().desyncs, 0);
            out
        }

        let mut rng = Pcg32::seed(0xC0FFEE);
        for _ in 0..50 {
            let mut cycle = 0u64;
            let mut txns: Vec<FsbTransaction> = Vec::new();
            for _ in 0..200 {
                cycle += rng.below(1 << 20);
                match rng.below(4) {
                    0 => {
                        // Payload-bearing messages with huge counters:
                        // both halves live near the top of the window.
                        let v = rng.below(u64::MAX >> 1) | (1 << 62);
                        let msg = if rng.below(2) == 0 {
                            Message::InstructionsRetired(v)
                        } else {
                            Message::CyclesCompleted(v)
                        };
                        txns.extend(MessageCodec::encode(msg, cycle));
                    }
                    1 => {
                        let msg = match rng.below(3) {
                            0 => Message::Start,
                            1 => Message::Stop,
                            _ => Message::CoreId(rng.below(32) as u32),
                        };
                        txns.extend(MessageCodec::encode(msg, cycle));
                    }
                    2 => {
                        // Data near address zero: a maximal backward
                        // line delta when it follows a message.
                        let kind = match rng.below(3) {
                            0 => FsbKind::ReadLine,
                            1 => FsbKind::ReadInvalidateLine,
                            _ => FsbKind::WriteLine,
                        };
                        txns.push(FsbTransaction::new(
                            cycle,
                            kind,
                            Addr::new(rng.below(1 << 20) & !63),
                        ));
                    }
                    _ => {
                        // Data just below the message window: the line
                        // delta to/from here stresses the zigzag range.
                        txns.push(FsbTransaction::new(
                            cycle,
                            FsbKind::ReadLine,
                            Addr::new(((1u64 << 46) - rng.below(1 << 24)) & !63),
                        ));
                    }
                }
            }
            let mut buf = Vec::new();
            let mut w = TraceWriter::new(&mut buf).unwrap();
            for t in &txns {
                w.write(t).unwrap();
            }
            assert_eq!(w.clamped(), 0, "generated stream is monotone");
            let _ = w.finish().unwrap();
            let out = decode(&buf).unwrap();
            assert_eq!(out, txns);
            assert_eq!(decode_messages(&out), decode_messages(&txns));
        }
    }

    #[test]
    fn footer_checksum_matches_pinned_fnv_constants() {
        // An empty body's checksum is the FNV-1a offset basis — the same
        // pinned constant as the runner's record codec. Changing either
        // silently would orphan every trace on disk.
        let buf = encode(&[]);
        let sum = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
        assert_eq!(sum, 0xcbf2_9ce4_8422_2325);
    }
}
