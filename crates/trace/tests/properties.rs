//! Property-based tests for the trace substrate.

use cmpsim_trace::{
    Addr, AddressSpace, MemRef, Message, MessageCodec, Pcg32, TraceSink, Tracer, VecSink,
};
use proptest::prelude::*;

fn message_strategy() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::Start),
        Just(Message::Stop),
        any::<u32>().prop_map(Message::CoreId),
        any::<u64>().prop_map(Message::InstructionsRetired),
        any::<u64>().prop_map(Message::CyclesCompleted),
    ]
}

proptest! {
    /// Any message round-trips through the address encoding.
    #[test]
    fn message_roundtrip(msg in message_strategy()) {
        let mut codec = MessageCodec::new();
        let mut decoded = None;
        for t in MessageCodec::encode(msg, 0) {
            decoded = codec.decode(&t).unwrap();
        }
        prop_assert_eq!(decoded, Some(msg));
    }

    /// Interleaving unrelated completed messages between the halves of a
    /// two-part counter does not corrupt it (the decoder keeps per-kind
    /// high halves).
    #[test]
    fn message_interleaving(v in (1u64 << 32).., core in any::<u32>()) {
        let mut codec = MessageCodec::new();
        let txns = MessageCodec::encode(Message::InstructionsRetired(v), 0);
        prop_assert_eq!(txns.len(), 2);
        prop_assert_eq!(codec.decode(&txns[0]).unwrap(), None);
        // A core-id message lands between the halves.
        for t in MessageCodec::encode(Message::CoreId(core), 0) {
            prop_assert_eq!(codec.decode(&t).unwrap(), Some(Message::CoreId(core)));
        }
        prop_assert_eq!(
            codec.decode(&txns[1]).unwrap(),
            Some(Message::InstructionsRetired(v))
        );
    }

    /// Allocations never overlap and respect alignment.
    #[test]
    fn regions_disjoint(sizes in prop::collection::vec((1u64..10_000, 0u32..8), 1..40)) {
        let mut space = AddressSpace::new();
        let regions: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &(size, align_log))| {
                space.alloc(&format!("r{i}"), size, 1 << align_log)
            })
            .collect();
        for (i, r) in regions.iter().enumerate() {
            prop_assert_eq!(r.base().raw() % (1 << sizes[i].1), 0);
            for other in &regions[i + 1..] {
                prop_assert!(r.end() <= other.base() || other.end() <= r.base());
            }
        }
        prop_assert_eq!(space.footprint(), sizes.iter().map(|s| s.0).sum::<u64>());
    }

    /// `MemRef::lines` covers exactly the bytes the access touches.
    #[test]
    fn lines_cover_access(addr in 0u64..100_000, size in 1u32..5_000) {
        let r = MemRef::read(Addr::new(addr), size);
        let lines: Vec<u64> = r.lines(64).collect();
        prop_assert_eq!(*lines.first().unwrap(), addr / 64);
        prop_assert_eq!(*lines.last().unwrap(), (addr + u64::from(size) - 1) / 64);
        prop_assert!(lines.windows(2).all(|w| w[1] == w[0] + 1));
    }

    /// The PCG stays in range and is reproducible.
    #[test]
    fn pcg_bounded_and_deterministic(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = Pcg32::seed(seed);
        let mut b = Pcg32::seed(seed);
        for _ in 0..50 {
            let x = a.below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.below(bound));
        }
    }

    /// Tracer accounting matches the sink's view for any access mix.
    #[test]
    fn tracer_matches_sink(ops in prop::collection::vec((0u8..3, 0u64..1 << 20), 1..200)) {
        let mut tracer = Tracer::new(VecSink::new());
        let (mut loads, mut stores) = (0u64, 0u64);
        for &(kind, addr) in &ops {
            match kind {
                0 => {
                    tracer.read(Addr::new(addr), 8);
                    loads += 1;
                }
                1 => {
                    tracer.write(Addr::new(addr), 8);
                    stores += 1;
                }
                _ => tracer.ops(3),
            }
        }
        prop_assert_eq!(tracer.loads(), loads);
        prop_assert_eq!(tracer.stores(), stores);
        prop_assert_eq!(tracer.sink().records().len() as u64, loads + stores);
    }

    /// Fractional op charging converges to the exact expected total.
    #[test]
    fn ops_f_is_exact_in_the_limit(per in 0.01f64..4.0, n in 100u32..2000) {
        struct Null;
        impl TraceSink for Null {
            fn record(&mut self, _r: MemRef) {}
        }
        let mut t = Tracer::new(Null);
        for _ in 0..n {
            t.read(Addr::new(0), 4);
            t.ops_f(per);
        }
        let expect = f64::from(n) * per;
        let got = (t.instructions() - t.memory_instructions()) as f64;
        prop_assert!((got - expect).abs() <= 1.0, "{got} vs {expect}");
    }
}
