//! Randomized invariant tests for the trace substrate, driven by the
//! crate's own deterministic PCG stream (the build environment is
//! offline, so no external property-testing framework is used; every
//! case is seeded and reproducible).

use cmpsim_trace::{
    Addr, AddressSpace, MemRef, Message, MessageCodec, Pcg32, TraceSink, Tracer, VecSink,
};

const CASES: u64 = 128;

fn random_message(rng: &mut Pcg32) -> Message {
    match rng.below(5) {
        0 => Message::Start,
        1 => Message::Stop,
        2 => Message::CoreId(rng.next_u32()),
        3 => Message::InstructionsRetired(rng.next_u64()),
        _ => Message::CyclesCompleted(rng.next_u64()),
    }
}

/// Any message round-trips through the address encoding.
#[test]
fn message_roundtrip() {
    let mut rng = Pcg32::seed(0x7ACE001);
    for case in 0..CASES {
        let msg = random_message(&mut rng);
        let mut codec = MessageCodec::new();
        let mut decoded = None;
        for t in MessageCodec::encode(msg, 0) {
            decoded = codec.decode(&t).unwrap();
        }
        assert_eq!(decoded, Some(msg), "case {case}");
    }
}

/// A message interrupting a two-part counter pair is a channel fault
/// (the encoder always emits the halves back-to-back). The decoder must
/// flag the orphan high half as a desync, decode the interloper
/// correctly, and resync so the *next* complete message is undamaged.
#[test]
fn message_interleaving_is_a_detected_desync() {
    let mut rng = Pcg32::seed(0x7ACE002);
    for case in 0..CASES {
        let v = (1u64 << 32) | rng.next_u64();
        let core = rng.next_u32();
        let mut codec = MessageCodec::new();
        let txns = MessageCodec::encode(Message::InstructionsRetired(v), 0);
        assert_eq!(txns.len(), 2, "case {case}");
        assert_eq!(codec.decode(&txns[0]).unwrap(), None, "case {case}");
        // A core-id message lands between the halves: the pair is torn.
        for t in MessageCodec::encode(Message::CoreId(core), 0) {
            assert_eq!(
                codec.decode(&t).unwrap(),
                Some(Message::CoreId(core)),
                "case {case}"
            );
        }
        assert_eq!(codec.stats().desyncs, 1, "case {case}");
        // The displaced low half now pairs with a zero high half — the
        // decoder must not resurrect the discarded orphan.
        assert_eq!(
            codec.decode(&txns[1]).unwrap(),
            Some(Message::InstructionsRetired(v & 0xFFFF_FFFF)),
            "case {case}"
        );
        // Recovery is complete: the next message decodes cleanly.
        let next = random_message(&mut rng);
        let mut decoded = None;
        for t in MessageCodec::encode(next, 1) {
            decoded = codec.decode(&t).unwrap();
        }
        assert_eq!(decoded, Some(next), "case {case}");
        assert_eq!(codec.stats().desyncs, 1, "case {case}");
    }
}

/// Round-trip under single-transaction corruption: for any valid
/// message sequence and any one flipped/dropped/duplicated transaction,
/// the decoder never panics, and it resyncs within one message boundary
/// — every message from two boundaries past the fault decodes exactly.
#[test]
fn single_fault_never_panics_and_resyncs() {
    let mut rng = Pcg32::seed(0x7ACE00F);
    for case in 0..CASES {
        let n = 4 + rng.below(12) as usize;
        let msgs: Vec<Message> = (0..n).map(|_| random_message(&mut rng)).collect();
        let mut txns = Vec::new();
        let mut owner = Vec::new(); // message index of each transaction
        for (i, m) in msgs.iter().enumerate() {
            for t in MessageCodec::encode(*m, i as u64) {
                txns.push(t);
                owner.push(i);
            }
        }
        let i = rng.below(txns.len() as u64) as usize;
        let mut stream = txns.clone();
        match rng.below(3) {
            0 => {
                stream.remove(i);
            }
            1 => {
                let t = stream[i];
                stream.insert(i, t);
            }
            _ => {
                // Flip one kind/payload address bit; the address stays in
                // the reserved window, so the fault is a corrupt message,
                // not a stray data transaction.
                let bit = rng.range(6, 43);
                let t = stream[i];
                stream[i] = cmpsim_trace::FsbTransaction::new(
                    t.cycle,
                    t.kind,
                    Addr::new(t.addr.raw() ^ (1 << bit)),
                );
            }
        }
        let mut codec = MessageCodec::new();
        let mut decoded = Vec::new();
        for t in &stream {
            // Errors are quarantined corruption, never a panic.
            if let Ok(Some(m)) = codec.decode(t) {
                decoded.push(m);
            }
        }
        // The fault can damage the message it hit and (via a bogus
        // pending high half) its successor; everything after that must
        // come through verbatim as the suffix of the decoded stream.
        let tail = &msgs[(owner[i] + 2).min(n)..];
        assert!(
            decoded.len() >= tail.len(),
            "case {case}: {} decoded, tail {}",
            decoded.len(),
            tail.len()
        );
        assert_eq!(&decoded[decoded.len() - tail.len()..], tail, "case {case}");
    }
}

/// Allocations never overlap and respect alignment.
#[test]
fn regions_disjoint() {
    let mut rng = Pcg32::seed(0x7ACE003);
    for case in 0..CASES {
        let n = 1 + rng.below(39) as usize;
        let sizes: Vec<(u64, u32)> = (0..n)
            .map(|_| (1 + rng.below(9_999), rng.below(8) as u32))
            .collect();
        let mut space = AddressSpace::new();
        let regions: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &(size, align_log))| space.alloc(&format!("r{i}"), size, 1 << align_log))
            .collect();
        for (i, r) in regions.iter().enumerate() {
            assert_eq!(r.base().raw() % (1 << sizes[i].1), 0, "case {case}");
            for other in &regions[i + 1..] {
                assert!(
                    r.end() <= other.base() || other.end() <= r.base(),
                    "case {case}: overlapping regions"
                );
            }
        }
        assert_eq!(
            space.footprint(),
            sizes.iter().map(|s| s.0).sum::<u64>(),
            "case {case}"
        );
    }
}

/// `MemRef::lines` covers exactly the bytes the access touches.
#[test]
fn lines_cover_access() {
    let mut rng = Pcg32::seed(0x7ACE004);
    for case in 0..CASES {
        let addr = rng.below(100_000);
        let size = 1 + rng.below(4_999) as u32;
        let r = MemRef::read(Addr::new(addr), size);
        let lines: Vec<u64> = r.lines(64).collect();
        assert_eq!(*lines.first().unwrap(), addr / 64, "case {case}");
        assert_eq!(
            *lines.last().unwrap(),
            (addr + u64::from(size) - 1) / 64,
            "case {case}"
        );
        assert!(
            lines.windows(2).all(|w| w[1] == w[0] + 1),
            "case {case}: lines not contiguous"
        );
    }
}

/// The PCG stays in range and is reproducible.
#[test]
fn pcg_bounded_and_deterministic() {
    let mut meta = Pcg32::seed(0x7ACE005);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let bound = 1 + meta.below(999_999);
        let mut a = Pcg32::seed(seed);
        let mut b = Pcg32::seed(seed);
        for _ in 0..50 {
            let x = a.below(bound);
            assert!(x < bound, "case {case}");
            assert_eq!(x, b.below(bound), "case {case}");
        }
    }
}

/// Tracer accounting matches the sink's view for any access mix.
#[test]
fn tracer_matches_sink() {
    let mut rng = Pcg32::seed(0x7ACE006);
    for case in 0..CASES {
        let n = 1 + rng.below(199) as usize;
        let ops: Vec<(u8, u64)> = (0..n)
            .map(|_| (rng.below(3) as u8, rng.below(1 << 20)))
            .collect();
        let mut tracer = Tracer::new(VecSink::new());
        let (mut loads, mut stores) = (0u64, 0u64);
        for &(kind, addr) in &ops {
            match kind {
                0 => {
                    tracer.read(Addr::new(addr), 8);
                    loads += 1;
                }
                1 => {
                    tracer.write(Addr::new(addr), 8);
                    stores += 1;
                }
                _ => tracer.ops(3),
            }
        }
        assert_eq!(tracer.loads(), loads, "case {case}");
        assert_eq!(tracer.stores(), stores, "case {case}");
        assert_eq!(
            tracer.sink().records().len() as u64,
            loads + stores,
            "case {case}"
        );
    }
}

/// Fractional op charging converges to the exact expected total.
#[test]
fn ops_f_is_exact_in_the_limit() {
    struct Null;
    impl TraceSink for Null {
        fn record(&mut self, _r: MemRef) {}
    }
    let mut rng = Pcg32::seed(0x7ACE007);
    for case in 0..CASES {
        let per = 0.01 + rng.f64() * 3.99;
        let n = 100 + rng.below(1_900) as u32;
        let mut t = Tracer::new(Null);
        for _ in 0..n {
            t.read(Addr::new(0), 4);
            t.ops_f(per);
        }
        let expect = f64::from(n) * per;
        let got = (t.instructions() - t.memory_instructions()) as f64;
        assert!(
            (got - expect).abs() <= 1.0,
            "case {case}: {got} vs {expect}"
        );
    }
}
